#ifndef MORSELDB_NUMA_MEM_STATS_H_
#define MORSELDB_NUMA_MEM_STATS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "numa/allocator.h"
#include "numa/topology.h"

namespace morsel {

// Software replacement for the Intel-PCM hardware counters the paper uses
// in Tables 1–3: operators report the bytes they touch together with the
// placement tag of the memory and the socket of the executing worker, and
// this accountant classifies them as local or remote and attributes
// remote traffic to the interconnect link it would cross.
//
// One TrafficCounters struct exists per worker (cache-line padded, no
// synchronization on the hot path); MemStatsRegistry aggregates them.
inline constexpr int kMaxSockets = 16;

struct alignas(kCacheLineSize) TrafficCounters {
  uint64_t read_local = 0;
  uint64_t read_remote = 0;
  uint64_t written_local = 0;
  uint64_t written_remote = 0;
  // Bytes moved across each directed socket pair (remote accesses only).
  uint64_t link[kMaxSockets][kMaxSockets] = {};

  void OnRead(int worker_socket, int data_socket, uint64_t bytes) {
    if (data_socket == worker_socket) {
      read_local += bytes;
    } else {
      read_remote += bytes;
      link[data_socket][worker_socket] += bytes;
    }
  }

  void OnWrite(int worker_socket, int data_socket, uint64_t bytes) {
    if (data_socket == worker_socket) {
      written_local += bytes;
    } else {
      written_remote += bytes;
      link[worker_socket][data_socket] += bytes;
    }
  }

  void Reset() { *this = TrafficCounters(); }

  void MergeFrom(const TrafficCounters& other) {
    read_local += other.read_local;
    read_remote += other.read_remote;
    written_local += other.written_local;
    written_remote += other.written_remote;
    for (int a = 0; a < kMaxSockets; ++a) {
      for (int b = 0; b < kMaxSockets; ++b) link[a][b] += other.link[a][b];
    }
  }
};

// Per-chunk / per-morsel tally of bytes touched, bucketed by home
// socket. Hot loops accumulate into the plain array and flush once per
// batch — one OnRead/OnWrite per socket instead of one accounting call
// per tuple. For interleaved memory (§4.2 hash table placement) the
// home socket is derived from the byte offset's 2 MB chunk.
struct SocketTally {
  uint64_t bytes[kMaxSockets] = {};

  void Add(int socket, uint64_t n) { bytes[socket] += n; }
  void AddInterleaved(size_t byte_offset, uint64_t n, int num_sockets) {
    bytes[InterleavedSocketOf(byte_offset, num_sockets)] += n;
  }

  void FlushReads(TrafficCounters* t, int worker_socket, int num_sockets) {
    for (int s = 0; s < num_sockets; ++s) {
      if (bytes[s] != 0) t->OnRead(worker_socket, s, bytes[s]);
      bytes[s] = 0;
    }
  }
  void FlushWrites(TrafficCounters* t, int worker_socket,
                   int num_sockets) {
    for (int s = 0; s < num_sockets; ++s) {
      if (bytes[s] != 0) t->OnWrite(worker_socket, s, bytes[s]);
      bytes[s] = 0;
    }
  }
};

// Aggregated view over all workers for one measurement window.
struct TrafficSnapshot {
  uint64_t read_local = 0;
  uint64_t read_remote = 0;
  uint64_t written_local = 0;
  uint64_t written_remote = 0;
  uint64_t max_link = 0;  // most loaded interconnect link, bytes
  uint64_t total_link = 0;

  uint64_t bytes_read() const { return read_local + read_remote; }
  uint64_t bytes_written() const { return written_local + written_remote; }

  // Percentage of all accessed bytes that were remote ("remote" column of
  // Tables 1 and 3).
  double RemotePercent() const {
    uint64_t total = bytes_read() + bytes_written();
    if (total == 0) return 0.0;
    return 100.0 * static_cast<double>(read_remote + written_remote) /
           static_cast<double>(total);
  }

  // Share of remote traffic on the most loaded link, a proxy for the
  // paper's "QPI" (most-utilized link) column. Returns percent of all
  // traffic that crosses that link.
  double MaxLinkPercent() const {
    uint64_t total = bytes_read() + bytes_written();
    if (total == 0) return 0.0;
    return 100.0 * static_cast<double>(max_link) /
           static_cast<double>(total);
  }
};

// Owns one TrafficCounters per worker slot.
class MemStatsRegistry {
 public:
  explicit MemStatsRegistry(int num_workers)
      : counters_(new TrafficCounters[num_workers]),
        num_workers_(num_workers) {}
  ~MemStatsRegistry() { delete[] counters_; }

  MemStatsRegistry(const MemStatsRegistry&) = delete;
  MemStatsRegistry& operator=(const MemStatsRegistry&) = delete;

  TrafficCounters* worker(int i) {
    MORSEL_DCHECK(i >= 0 && i < num_workers_);
    return &counters_[i];
  }
  int num_workers() const { return num_workers_; }

  void ResetAll() {
    for (int i = 0; i < num_workers_; ++i) counters_[i].Reset();
  }

  TrafficSnapshot Aggregate() const;

 private:
  TrafficCounters* counters_;
  int num_workers_;
};

}  // namespace morsel

#endif  // MORSELDB_NUMA_MEM_STATS_H_
