#ifndef MORSELDB_NUMA_ALLOCATOR_H_
#define MORSELDB_NUMA_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/macros.h"

namespace morsel {

// Where an allocation (logically) lives. The engine tracks NUMA placement
// via tags carried by containers; see DESIGN.md §1 for why logical tags
// reproduce the paper's scheduling behaviour on single-node hosts.
//
// kInterleavedSocket marks memory spread round-robin across all sockets
// in 2 MB chunks — the policy the paper uses for the global join hash
// table (§4.2: "interleaved (spread) across all sockets").
inline constexpr int kInterleavedSocket = -1;

// Chunk granularity for interleaved placement accounting; mirrors the
// 2 MB huge pages the paper allocates hash tables with.
inline constexpr size_t kInterleaveChunkBytes = size_t{2} << 20;

// Socket a byte offset of an interleaved allocation maps to.
inline int InterleavedSocketOf(size_t byte_offset, int num_sockets) {
  return static_cast<int>((byte_offset / kInterleaveChunkBytes) %
                          static_cast<size_t>(num_sockets));
}

// Cache-line aligned allocation. On systems with libnuma one would mbind
// here; in this reproduction the socket is a logical tag used by the
// traffic accountant, and the allocation itself is plain aligned memory.
void* NumaAlloc(size_t bytes, int socket);
void NumaFree(void* p, size_t bytes);

// Total bytes currently allocated through NumaAlloc (leak checks in tests).
size_t NumaAllocatedBytes();

// Minimal growable array with a NUMA placement tag. Move-only. Only
// trivially copyable element types are supported (checked at compile
// time); the engine stores raw column data, offsets and tuples in these.
template <typename T>
class NumaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "NumaVector only holds trivially copyable types");

 public:
  explicit NumaVector(int socket = 0) : socket_(socket) {}
  ~NumaVector() { Release(); }

  NumaVector(NumaVector&& other) noexcept { MoveFrom(other); }
  NumaVector& operator=(NumaVector&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  NumaVector(const NumaVector&) = delete;
  NumaVector& operator=(const NumaVector&) = delete;

  int socket() const { return socket_; }
  void set_socket(int socket) { socket_ = socket; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](size_t i) {
    MORSEL_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    MORSEL_DCHECK(i < size_);
    return data_[i];
  }
  T& back() { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void reserve(size_t n) {
    if (n > capacity_) Regrow(n);
  }

  void resize(size_t n) {
    // Geometric growth: resize is the hot path of RowBuffer::AppendRow,
    // which extends by one tuple at a time.
    if (n > capacity_) {
      size_t want = capacity_ == 0 ? 16 : capacity_ * 2;
      while (want < n) want *= 2;
      Regrow(want);
    }
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  void clear() { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == capacity_) Regrow(capacity_ == 0 ? 16 : capacity_ * 2);
    data_[size_++] = v;
  }

  // Appends `n` elements from `src` (bulk load path for generators).
  void append(const T* src, size_t n) {
    if (size_ + n > capacity_) {
      size_t want = capacity_ == 0 ? 16 : capacity_;
      while (want < size_ + n) want *= 2;
      Regrow(want);
    }
    std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

 private:
  void Regrow(size_t new_cap) {
    T* nd = static_cast<T*>(NumaAlloc(new_cap * sizeof(T), socket_));
    if (size_ > 0) std::memcpy(nd, data_, size_ * sizeof(T));
    if (data_ != nullptr) NumaFree(data_, capacity_ * sizeof(T));
    data_ = nd;
    capacity_ = new_cap;
  }

  void Release() {
    if (data_ != nullptr) NumaFree(data_, capacity_ * sizeof(T));
    data_ = nullptr;
    size_ = capacity_ = 0;
  }

  void MoveFrom(NumaVector& other) {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    socket_ = other.socket_;
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  int socket_ = 0;
};

}  // namespace morsel

#endif  // MORSELDB_NUMA_ALLOCATOR_H_
