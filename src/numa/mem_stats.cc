#include "numa/mem_stats.h"

#include <algorithm>

namespace morsel {

TrafficSnapshot MemStatsRegistry::Aggregate() const {
  TrafficCounters merged;
  for (int i = 0; i < num_workers_; ++i) merged.MergeFrom(counters_[i]);
  TrafficSnapshot snap;
  snap.read_local = merged.read_local;
  snap.read_remote = merged.read_remote;
  snap.written_local = merged.written_local;
  snap.written_remote = merged.written_remote;
  for (int a = 0; a < kMaxSockets; ++a) {
    for (int b = 0; b < kMaxSockets; ++b) {
      snap.total_link += merged.link[a][b];
      snap.max_link = std::max(snap.max_link, merged.link[a][b]);
    }
  }
  return snap;
}

}  // namespace morsel
