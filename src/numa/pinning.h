#ifndef MORSELDB_NUMA_PINNING_H_
#define MORSELDB_NUMA_PINNING_H_

namespace morsel {

// Pins the calling thread to the physical CPU `virtual_core %
// hardware_concurrency` (§3: workers are "permanently bound" to cores so
// "no unexpected loss of NUMA locality can occur due to the OS moving a
// thread"). Returns false when the host forbids affinity changes; the
// engine then degrades gracefully to unpinned threads while all logical
// NUMA bookkeeping still uses `virtual_core`.
//
// Pinning can be disabled with MORSEL_NO_PINNING=1 (useful under
// sanitizers or in heavily restricted containers).
bool PinThreadToCore(int virtual_core);

}  // namespace morsel

#endif  // MORSELDB_NUMA_PINNING_H_
