#include "numa/pinning.h"

#include <pthread.h>
#include <sched.h>

#include <cstdlib>
#include <thread>

namespace morsel {

bool PinThreadToCore(int virtual_core) {
  if (std::getenv("MORSEL_NO_PINNING") != nullptr) return false;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  int cpu = virtual_core % static_cast<int>(hw);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace morsel
