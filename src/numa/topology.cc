#include "numa/topology.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/macros.h"

namespace morsel {

Topology::Topology(int num_sockets, int cores_per_socket,
                   InterconnectKind kind)
    : num_sockets_(num_sockets),
      cores_per_socket_(cores_per_socket),
      kind_(kind) {
  MORSEL_CHECK(num_sockets >= 1);
  MORSEL_CHECK(cores_per_socket >= 1);
  distance_.resize(num_sockets * num_sockets, 0);
  for (int a = 0; a < num_sockets; ++a) {
    for (int b = 0; b < num_sockets; ++b) {
      int d;
      if (a == b) {
        d = 0;
      } else if (kind == InterconnectKind::kFullyConnected) {
        d = 1;
      } else {
        // Ring: hop count is the shorter way around the ring.
        int fwd = std::abs(a - b);
        d = std::min(fwd, num_sockets - fwd);
      }
      distance_[a * num_sockets + b] = d;
    }
  }
  steal_order_.resize(num_sockets);
  for (int s = 0; s < num_sockets; ++s) {
    steal_order_[s].resize(num_sockets);
    for (int i = 0; i < num_sockets; ++i) steal_order_[s][i] = i;
    std::stable_sort(steal_order_[s].begin(), steal_order_[s].end(),
                     [&](int a, int b) {
                       return Distance(s, a) < Distance(s, b);
                     });
  }
}

Topology Topology::Detect() {
  int sockets = 4;
  int cores = 8;
  InterconnectKind kind = InterconnectKind::kFullyConnected;
  if (const char* env = std::getenv("MORSEL_SOCKETS")) {
    int v = std::atoi(env);
    if (v >= 1) sockets = v;
  }
  if (const char* env = std::getenv("MORSEL_CORES_PER_SOCKET")) {
    int v = std::atoi(env);
    if (v >= 1) cores = v;
  }
  if (const char* env = std::getenv("MORSEL_INTERCONNECT")) {
    if (std::strcmp(env, "ring") == 0) kind = InterconnectKind::kRing;
  }
  return Topology(sockets, cores, kind);
}

}  // namespace morsel
