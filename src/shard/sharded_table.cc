#include "shard/sharded_table.h"

#include <bit>

#include "common/hash.h"
#include "common/macros.h"
#include "exec/radix_partition.h"

namespace morsel {

ShardedTable::ShardedTable(const Table* canonical, ShardDist dist,
                           std::vector<std::string> hash_keys,
                           const std::vector<Topology>& shard_topos)
    : canonical_(canonical),
      dist_(dist),
      hash_keys_(std::move(hash_keys)) {
  MORSEL_CHECK(!shard_topos.empty());
  MORSEL_CHECK_MSG(dist != ShardDist::kHash || !hash_keys_.empty(),
                   "hash distribution requires key columns");
  for (const std::string& k : hash_keys_) {
    hash_key_cols_.push_back(canonical_->schema().IndexOf(k));
  }
  for (size_t s = 0; s < shard_topos.size(); ++s) {
    frags_.push_back(std::make_unique<Table>(
        canonical_->name() + "@shard" + std::to_string(s),
        canonical_->schema(), shard_topos[s], canonical_->placement()));
  }
}

int ShardedTable::RouteRow(const Table& src, int part, size_t row,
                           size_t ordinal) {
  switch (dist_) {
    case ShardDist::kReplicated:
      return -1;  // caller appends to every shard
    case ShardDist::kRoundRobin:
      return static_cast<int>(ordinal % frags_.size());
    case ShardDist::kHash:
      break;
  }
  // Row hash with HashRow's exact semantics (exec/operators.cc): the
  // exchange send path hashes chunk values the same way, so a
  // hash-distributed table is co-partitioned with exchange output on
  // the same keys — the whole point of the kHash policy.
  uint64_t h = 0;
  for (size_t k = 0; k < hash_key_cols_.size(); ++k) {
    const int c = hash_key_cols_[k];
    uint64_t hk = 0;
    switch (src.schema().field(c).type) {
      case LogicalType::kInt32:
        hk = Hash64(static_cast<uint64_t>(
            const_cast<Table&>(src).Int32Col(part, c)->Get(row)));
        break;
      case LogicalType::kInt64:
        hk = Hash64(static_cast<uint64_t>(
            const_cast<Table&>(src).Int64Col(part, c)->Get(row)));
        break;
      case LogicalType::kDouble:
        hk = Hash64(std::bit_cast<uint64_t>(
            const_cast<Table&>(src).DoubleCol(part, c)->Get(row)));
        break;
      case LogicalType::kString:
        hk = HashString(const_cast<Table&>(src).StrCol(part, c)->Get(row));
        break;
    }
    h = k == 0 ? hk : HashCombine(h, hk);
  }
  return ShardPartitionOf(h, static_cast<int>(frags_.size()));
}

void ShardedTable::Load() {
  const Schema& schema = canonical_->schema();
  const int ncols = schema.num_fields();
  // Per-fragment row tally: rows deal round-robin across the
  // fragment's own (per-socket) partitions so every shard still has
  // many morsel-able storage areas.
  std::vector<size_t> frag_rows(frags_.size(), 0);
  auto append_row = [&](int shard, int part, size_t row) {
    Table* dst = frags_[shard].get();
    const int dp =
        static_cast<int>(frag_rows[shard]++ % dst->num_partitions());
    Table& src = const_cast<Table&>(*canonical_);
    for (int c = 0; c < ncols; ++c) {
      switch (schema.field(c).type) {
        case LogicalType::kInt32:
          dst->Int32Col(dp, c)->Append(src.Int32Col(part, c)->Get(row));
          break;
        case LogicalType::kInt64:
          dst->Int64Col(dp, c)->Append(src.Int64Col(part, c)->Get(row));
          break;
        case LogicalType::kDouble:
          dst->DoubleCol(dp, c)->Append(src.DoubleCol(part, c)->Get(row));
          break;
        case LogicalType::kString:
          dst->StrCol(dp, c)->Append(src.StrCol(part, c)->Get(row));
          break;
      }
    }
  };

  size_t ordinal = 0;
  for (int p = 0; p < canonical_->num_partitions(); ++p) {
    const size_t rows = canonical_->PartitionRows(p);
    for (size_t r = 0; r < rows; ++r, ++ordinal) {
      const int shard = RouteRow(*canonical_, p, r, ordinal);
      if (shard < 0) {
        for (int s = 0; s < num_shards(); ++s) append_row(s, p, r);
      } else {
        append_row(shard, p, r);
      }
    }
  }
  for (std::unique_ptr<Table>& frag : frags_) {
    for (int p = 0; p < frag->num_partitions(); ++p) {
      frag->SealPartition(p);
    }
  }
}

}  // namespace morsel
