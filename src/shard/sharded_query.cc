#include "shard/sharded_query.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/macros.h"
#include "engine/query.h"
#include "exec/exchange.h"
#include "exec/expression.h"
#include "shard/sharded_engine.h"

namespace morsel {

namespace {

// Below this build cardinality a broadcast join is always worth it
// (mirrors the single-engine small-build heuristics).
constexpr uint64_t kBroadcastRowsThreshold = 4096;

// Hidden scalar-aggregation partial column: per-shard input row count,
// used to drop the all-default partial an *empty* shard emits (a scalar
// GROUP BY produces exactly one row even over zero input, and merging
// its zeroed MIN/MAX states would corrupt the global extremes).
constexpr char kShardRowsCol[] = "__shard_rows";

std::vector<std::string> KeysOnly(const std::vector<std::string>& v) {
  return v;
}

// True when every element of `sub` appears in `super` (set semantics).
bool SubsetOf(const std::vector<std::string>& sub,
              const std::vector<std::string>& super) {
  for (const std::string& s : sub) {
    if (std::find(super.begin(), super.end(), s) == super.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

ShardedQuery::ShardedQuery(ShardedEngine* engine, LogicalPlan plan,
                           double priority)
    : engine_(engine),
      plan_(std::move(plan)),
      priority_(priority),
      num_shards_(engine->num_shards()) {
  MORSEL_CHECK(plan_.valid());
}

ShardedQuery::~ShardedQuery() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ && !done_) {
      cancel_requested_ = true;
      for (Query* q : inflight_) q->Cancel();
    }
  }
  if (thread_.joinable()) thread_.join();
}

void ShardedQuery::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MORSEL_CHECK_MSG(!started_, "sharded query already started");
    started_ = true;
  }
  thread_ = std::thread([this] { Run(); });
}

void ShardedQuery::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  MORSEL_CHECK_MSG(started_, "Wait before Start");
  cv_.wait(lock, [&] { return done_; });
}

ResultSet ShardedQuery::Execute() {
  Start();
  Wait();
  return TakeResult();
}

ResultSet ShardedQuery::TakeResult() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MORSEL_CHECK_MSG(done_, "TakeResult before completion");
  }
  if (result_taken_.exchange(true)) {
    ResultSet empty;
    empty.set_status(
        QueryStatus::Internal("result already consumed"));
    return empty;
  }
  ResultSet out = std::move(final_);
  out.set_status(status());
  return out;
}

void ShardedQuery::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancel_requested_ = true;
  for (Query* q : inflight_) q->Cancel();
}

QueryStatus ShardedQuery::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void ShardedQuery::SetMaxWorkers(int n) { max_workers_ = n; }
void ShardedQuery::SetMemoryBudget(int64_t bytes) { budget_bytes_ = bytes; }
void ShardedQuery::SetDeadline(std::chrono::milliseconds after) {
  deadline_ = std::chrono::steady_clock::now() + after;
}
void ShardedQuery::SetFaultInjection(const FaultInjectionOptions& opts) {
  fault_ = opts;
}

std::string ShardedQuery::ExplainPlan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return explain_;
}

void ShardedQuery::LogLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  explain_ += line;
  explain_ += '\n';
}

// Plan-time cardinality guess for a canonical subtree; only feeds the
// broadcast-vs-repartition tiebreak (the build side's side of that
// comparison is exact — its stage has already run).
double ShardedQuery::EstimateRows(const LogicalNode* n) {
  switch (n->kind) {
    case LogicalNode::Kind::kScan:
      return n->scan_rows;
    case LogicalNode::Kind::kFilter:
      return 0.3 * EstimateRows(n->input.get());
    case LogicalNode::Kind::kGroupBy:
      return 0.1 * EstimateRows(n->input.get()) + 1.0;
    case LogicalNode::Kind::kJoin:
      return EstimateRows(n->input.get());
    default:
      return n->input != nullptr ? EstimateRows(n->input.get()) : 0.0;
  }
}

// --- stage execution --------------------------------------------------------

QueryStatus ShardedQuery::RunStage(std::vector<LogicalPlan> plans,
                                   const std::string& label,
                                   std::vector<ResultSet>* results) {
  const int n = static_cast<int>(plans.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancel_requested_) return QueryStatus::Cancelled();
  }
  std::chrono::milliseconds remaining{0};
  if (deadline_.has_value()) {
    auto now = std::chrono::steady_clock::now();
    if (now >= *deadline_) return QueryStatus::DeadlineExceeded();
    remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline_ - now);
    if (remaining.count() < 1) remaining = std::chrono::milliseconds(1);
  }

  std::vector<std::unique_ptr<Query>> queries;
  queries.reserve(n);
  for (int s = 0; s < n; ++s) {
    std::unique_ptr<Query> q = engine_->shard(s)->CreateQuery(priority_);
    // Budget before SetPlan so lowering-time allocations are governed.
    if (budget_bytes_ > 0) {
      q->SetMemoryBudget(std::max<int64_t>(1, budget_bytes_ / num_shards_));
    }
    if (fault_.enabled) {
      // Reseed per (stage, shard) so every shard query trips a
      // distinct — but reproducible — fault point.
      FaultInjectionOptions f = fault_;
      f.seed = HashCombine(
          fault_.seed,
          HashCombine(static_cast<uint64_t>(stage_idx_),
                      static_cast<uint64_t>(s)));
      q->SetFaultInjection(f);
    }
    q->SetPlan(plans[s]);
    if (max_workers_ > 0) q->SetMaxWorkers(max_workers_);
    if (deadline_.has_value()) q->SetDeadline(remaining);
    queries.push_back(std::move(q));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& q : queries) inflight_.push_back(q.get());
  }
  for (auto& q : queries) q->Start();
  {
    // A Cancel that raced Start: the queries registered above may have
    // missed it, so re-apply under the lock.
    std::lock_guard<std::mutex> lock(mu_);
    if (cancel_requested_) {
      for (auto& q : queries) q->Cancel();
    }
  }

  // Fail-fast drain: poll the shard queries round-robin; the first
  // non-ok completion cancels every sibling still running, so one
  // failing shard tears the whole distributed stage down at morsel
  // latency instead of waiting out the stragglers.
  std::vector<bool> finished(n, false);
  int pending = n;
  bool cancelled_siblings = false;
  while (pending > 0) {
    for (int s = 0; s < n; ++s) {
      if (finished[s]) continue;
      if (!queries[s]->WaitFor(std::chrono::milliseconds(2))) continue;
      finished[s] = true;
      --pending;
      if (!queries[s]->status().ok() && !cancelled_siblings) {
        cancelled_siblings = true;
        for (int t = 0; t < n; ++t) {
          if (!finished[t]) queries[t]->Cancel();
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.clear();
  }

  // Deterministic stage status: scan shards in index order; a "real"
  // failure beats the kCancelled echoes fail-fast propagation caused.
  QueryStatus st = QueryStatus::Ok();
  for (int s = 0; s < n; ++s) {
    QueryStatus qs = queries[s]->status();
    if (qs.ok()) continue;
    if (st.ok() || (st.code == StatusCode::kCancelled &&
                    qs.code != StatusCode::kCancelled)) {
      st = qs;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    explain_ += "=== stage " + std::to_string(stage_idx_) + ": " + label +
                " (" + std::to_string(n) + " shards) ===\n";
    for (int s = 0; s < n; ++s) {
      explain_ += "--- shard " + std::to_string(s) + " ---\n";
      explain_ += queries[s]->ExplainPlan();
    }
  }
  ++stage_idx_;

  if (st.ok() && results != nullptr) {
    for (auto& q : queries) results->push_back(q->TakeResult());
  }
  return st;
}

std::shared_ptr<ExchangeChannel> ShardedQuery::RunSendStage(
    Part* part, const std::vector<std::string>& keys,
    const std::string& label, std::vector<std::string>* names_out) {
  ColScope scope = part->shards[0].scope();
  *names_out = scope.names();
  std::vector<int> sender_slots;
  for (int s = 0; s < num_shards_; ++s) {
    sender_slots.push_back(engine_->shard(s)->num_workers() + 1);
  }
  auto channel = std::make_shared<ExchangeChannel>(
      scope.types(), std::move(sender_slots), num_shards_);
  channels_.push_back(channel);

  std::vector<LogicalPlan> plans;
  for (int s = 0; s < num_shards_; ++s) {
    part->shards[s].ExchangeSend(channel, s, keys);
    plans.push_back(part->shards[s].Build());
  }
  part->shards.clear();
  coord_status_ = RunStage(std::move(plans), label, nullptr);
  if (failed()) return nullptr;
  return channel;
}

// --- plan distribution ------------------------------------------------------

ShardedQuery::Part ShardedQuery::Distribute(const LogicalNode* n) {
  switch (n->kind) {
    case LogicalNode::Kind::kScan:
      return DistributeScan(n);
    case LogicalNode::Kind::kFilter: {
      Part in = Distribute(n->input.get());
      if (failed()) return {};
      for (PlanBuilder& pb : in.shards) {
        pb.Filter(n->predicate->Clone());
      }
      return in;  // a filter never moves rows: distribution preserved
    }
    case LogicalNode::Kind::kProject: {
      Part in = Distribute(n->input.get());
      if (failed()) return {};
      Dist out_dist;
      out_dist.kind = in.dist.kind;
      if (in.dist.kind == Dist::Kind::kHashOn) {
        // The hash property survives only if every routing key comes
        // out the other side as a bare column reference (possibly
        // renamed); any computed key column breaks placement.
        ColScope scope = in.shards[0].scope();
        for (const std::string& key : in.dist.keys) {
          const int in_idx = scope.Index(key);
          int out_idx = -1;
          for (size_t j = 0; j < n->exprs.size(); ++j) {
            if (n->exprs[j]->AsColumnIndex() == in_idx) {
              out_idx = static_cast<int>(j);
              break;
            }
          }
          if (out_idx < 0) {
            out_dist.kind = Dist::Kind::kArbitrary;
            out_dist.keys.clear();
            break;
          }
          out_dist.keys.push_back(n->names[out_idx]);
        }
      }
      for (PlanBuilder& pb : in.shards) {
        std::vector<NamedExpr> exprs;
        for (size_t j = 0; j < n->exprs.size(); ++j) {
          exprs.push_back(NE(n->names[j], n->exprs[j]->Clone()));
        }
        pb.Project(std::move(exprs));
      }
      in.dist = std::move(out_dist);
      return in;
    }
    case LogicalNode::Kind::kGroupBy:
      return DistributeGroupBy(n);
    case LogicalNode::Kind::kJoin:
      return DistributeJoin(n);
    case LogicalNode::Kind::kOrderBy:
    case LogicalNode::Kind::kCollect:
    case LogicalNode::Kind::kExchangeSend:
    case LogicalNode::Kind::kExchangeRecv:
      break;
  }
  MORSEL_CHECK_MSG(false, "node kind cannot appear mid-plan");
  return {};
}

ShardedQuery::Part ShardedQuery::DistributeScan(const LogicalNode* n) {
  const ShardedTable* st = engine_->FindTable(n->table);
  MORSEL_CHECK_MSG(st != nullptr,
                   "scanned table is not registered with the sharded "
                   "engine (ShardedEngine::RegisterTable)");
  Part out;
  for (int s = 0; s < num_shards_; ++s) {
    out.shards.push_back(
        PlanBuilder::Scan(st->fragment(s), KeysOnly(n->names)));
  }
  switch (st->dist()) {
    case ShardDist::kReplicated:
      out.dist.kind = Dist::Kind::kReplicated;
      break;
    case ShardDist::kHash:
      // The placement keys are only usable downstream if the scan
      // projected all of them.
      if (SubsetOf(st->hash_keys(), n->names)) {
        out.dist.kind = Dist::Kind::kHashOn;
        out.dist.keys = st->hash_keys();
      }
      break;
    case ShardDist::kRoundRobin:
      break;  // kArbitrary
  }
  return out;
}

ShardedQuery::Part ShardedQuery::DistributeGroupBy(const LogicalNode* n) {
  Part in = Distribute(n->input.get());
  if (failed()) return {};

  auto clone_aggs = [&] {
    std::vector<AggItem> aggs;
    for (const AggItem& a : n->aggs) {
      aggs.push_back(AggItem{
          a.func, a.input != nullptr ? a.input->Clone() : nullptr,
          a.out_name});
    }
    return aggs;
  };

  // Every shard holds all rows: the local group-by IS the global one.
  if (in.dist.kind == Dist::Kind::kReplicated) {
    for (PlanBuilder& pb : in.shards) {
      pb.GroupBy(KeysOnly(n->group_keys), clone_aggs());
    }
    return in;
  }

  // Co-partitioned: rows agreeing on the routing keys share a shard, so
  // grouping by a superset of them never crosses shards.
  if (!n->group_keys.empty() && in.dist.kind == Dist::Kind::kHashOn &&
      SubsetOf(in.dist.keys, n->group_keys)) {
    LogLine("[groupby: co-partitioned, local per shard]");
    for (PlanBuilder& pb : in.shards) {
      pb.GroupBy(KeysOnly(n->group_keys), clone_aggs());
    }
    return in;  // output keeps the routing columns, property holds
  }

  // Distributed two-phase: per-shard partials, exchange on the group
  // keys (always repartition — partials are tiny and the merge must see
  // each group whole), per-shard merge with rewritten aggregates.
  const bool scalar = n->group_keys.empty();
  for (PlanBuilder& pb : in.shards) {
    std::vector<AggItem> partial = clone_aggs();
    if (scalar) {
      partial.push_back(AggItem{AggFunc::kCount, nullptr, kShardRowsCol});
    }
    pb.GroupBy(KeysOnly(n->group_keys), std::move(partial));
  }
  std::vector<std::string> partial_names;
  std::shared_ptr<ExchangeChannel> ch = RunSendStage(
      &in, n->group_keys, "group-by partial exchange", &partial_names);
  if (failed()) return {};
  ch->set_mode(ExchangeMode::kRepartition);
  LogLine("[exchange decision: repartition group-by partials, rows=" +
          std::to_string(ch->total_rows()) + "]");

  Part out;
  for (int s = 0; s < num_shards_; ++s) {
    PlanBuilder pb = PlanBuilder::ExchangeRecv(
        ch, s, partial_names,
        static_cast<double>(ch->bucket_rows(s)));
    if (scalar) {
      // Drop the one all-default partial an empty shard emits; its
      // zeroed MIN/MAX states must not reach the merge.
      pb.Filter(Gt(pb.Col(kShardRowsCol), ConstI64(0)));
    }
    std::vector<AggItem> merge;
    for (const AggItem& a : n->aggs) {
      // A partial's accumulator column re-aggregates with SUM for the
      // additive functions and with itself for the extremes; the
      // accumulator types are idempotent under this rewrite, so the
      // merged schema matches the single-engine one exactly.
      AggFunc f = a.func == AggFunc::kCount ? AggFunc::kSum : a.func;
      merge.push_back(AggItem{f, pb.Col(a.out_name), a.out_name});
    }
    pb.GroupBy(KeysOnly(n->group_keys), std::move(merge));
    if (scalar && s != 0) {
      // A keyless exchange routes every partial to bucket 0; the other
      // shards' scalar merges would each fabricate one empty-input row.
      pb.Filter(ConstI32(0));
    }
    out.shards.push_back(std::move(pb));
  }
  if (!scalar) {
    out.dist.kind = Dist::Kind::kHashOn;
    out.dist.keys = n->group_keys;
  }
  return out;
}

ShardedQuery::Part ShardedQuery::DistributeJoin(const LogicalNode* n) {
  Part probe = Distribute(n->input.get());
  if (failed()) return {};
  Part build = Distribute(n->build.get());
  if (failed()) return {};

  auto join_local = [&](Part build_side) {
    for (int s = 0; s < num_shards_; ++s) {
      probe.shards[s].Join(std::move(build_side.shards[s]),
                           KeysOnly(n->probe_keys),
                           KeysOnly(n->build_keys),
                           KeysOnly(n->build_payload), n->join_kind,
                           n->residual, n->strategy);
    }
  };

  const bool probe_repl = probe.dist.kind == Dist::Kind::kReplicated;
  const bool build_repl = build.dist.kind == Dist::Kind::kReplicated;

  // A replicated build side joins locally: every shard sees the whole
  // build input, and each probe row lives on exactly one shard. The
  // exception is the build-driven kRightOuterMark — its unmatched-build
  // emission would repeat per shard — unless the probe is replicated
  // too (then the whole join is replicated).
  if (build_repl &&
      (n->join_kind != JoinKind::kRightOuterMark || probe_repl)) {
    LogLine("[join: local, build side replicated]");
    join_local(std::move(build));
    if (n->join_kind == JoinKind::kRightOuterMark) {
      // Padded unmatched-build rows carry default probe keys; only the
      // fully replicated property survives them.
      probe.dist.kind = Dist::Kind::kReplicated;
      probe.dist.keys.clear();
    }
    return probe;
  }

  // Co-partitioned: both sides hash-placed on the join keys, in the
  // same key order (the hash chain is order-sensitive).
  if (probe.dist.kind == Dist::Kind::kHashOn &&
      probe.dist.keys == n->probe_keys &&
      build.dist.kind == Dist::Kind::kHashOn &&
      build.dist.keys == n->build_keys) {
    LogLine("[join: local, co-partitioned on join keys]");
    join_local(std::move(build));
    if (n->join_kind == JoinKind::kRightOuterMark) {
      probe.dist.kind = Dist::Kind::kArbitrary;
      probe.dist.keys.clear();
    }
    return probe;
  }

  // A replicated side that could not take a fast path must first be
  // made disjoint — exchanging it as-is would transfer every row
  // num_shards times. Restricting it to shard 0 keeps exactly one copy.
  auto restrict_to_shard0 = [&](Part* part) {
    for (int s = 1; s < num_shards_; ++s) {
      part->shards[s].Filter(ConstI32(0));
    }
    part->dist.kind = Dist::Kind::kArbitrary;
    part->dist.keys.clear();
  };
  if (probe_repl) restrict_to_shard0(&probe);
  if (build_repl) restrict_to_shard0(&build);

  // Run the build side's send stage now: the broadcast-vs-repartition
  // choice below then uses the exact transferred cardinality instead of
  // an estimate (distributed runtime feedback, DESIGN §9/§14).
  std::vector<std::string> build_names;
  std::shared_ptr<ExchangeChannel> ch_build = RunSendStage(
      &build, n->build_keys, "join build exchange", &build_names);
  if (failed()) return {};
  const uint64_t build_rows = ch_build->total_rows();

  const bool probe_partitioned =
      probe.dist.kind == Dist::Kind::kHashOn &&
      probe.dist.keys == n->probe_keys;
  const double probe_est = EstimateRows(n->input.get());
  // Broadcast replays the build rows on every shard but leaves the
  // probe side untouched; it is unsafe for kRightOuterMark (unmatched
  // build rows would be emitted once per shard) and pointless when the
  // probe is already partitioned on the join keys.
  const bool broadcast =
      n->join_kind != JoinKind::kRightOuterMark && !probe_partitioned &&
      (build_rows <= kBroadcastRowsThreshold ||
       static_cast<double>(build_rows) * (num_shards_ - 1) < probe_est);
  ch_build->set_mode(broadcast ? ExchangeMode::kBroadcast
                               : ExchangeMode::kRepartition);
  LogLine(std::string("[exchange decision: ") +
          (broadcast ? "broadcast" : "repartition") +
          " build side, rows=" + std::to_string(build_rows) +
          ", probe_est=" + std::to_string(static_cast<int64_t>(probe_est)) +
          "]");

  if (!broadcast && !probe_partitioned) {
    // Repartition the probe side too, onto the same key space.
    std::vector<std::string> probe_names;
    std::shared_ptr<ExchangeChannel> ch_probe = RunSendStage(
        &probe, n->probe_keys, "join probe exchange", &probe_names);
    if (failed()) return {};
    ch_probe->set_mode(ExchangeMode::kRepartition);
    Part repart;
    for (int s = 0; s < num_shards_; ++s) {
      repart.shards.push_back(PlanBuilder::ExchangeRecv(
          ch_probe, s, probe_names,
          static_cast<double>(ch_probe->bucket_rows(s))));
    }
    repart.dist.kind = Dist::Kind::kHashOn;
    repart.dist.keys = n->probe_keys;
    probe = std::move(repart);
  }

  Part recv_build;
  for (int s = 0; s < num_shards_; ++s) {
    const double est =
        broadcast ? static_cast<double>(build_rows)
                  : static_cast<double>(ch_build->bucket_rows(s));
    recv_build.shards.push_back(
        PlanBuilder::ExchangeRecv(ch_build, s, build_names, est));
  }
  join_local(std::move(recv_build));
  if (!broadcast) {
    probe.dist.kind = n->join_kind == JoinKind::kRightOuterMark
                          ? Dist::Kind::kArbitrary
                          : Dist::Kind::kHashOn;
    probe.dist.keys = probe.dist.kind == Dist::Kind::kHashOn
                          ? n->probe_keys
                          : std::vector<std::string>{};
  }
  // Broadcast: the probe rows never moved, so its property is already
  // right in `probe`.
  return probe;
}

// --- coordinator ------------------------------------------------------------

void ShardedQuery::Run() {
  const LogicalNode* root = plan_.root();
  MORSEL_CHECK_MSG(root->kind == LogicalNode::Kind::kCollect ||
                       root->kind == LogicalNode::Kind::kOrderBy,
                   "sharded plans must end in CollectResult or OrderBy");

  Part in = Distribute(root->input.get());
  std::vector<ResultSet> results;
  bool replicated = false;
  if (!failed()) {
    replicated = in.dist.kind == Dist::Kind::kReplicated;
    std::vector<LogicalPlan> plans;
    for (PlanBuilder& pb : in.shards) {
      if (root->kind == LogicalNode::Kind::kCollect) {
        pb.CollectResult();
      } else {
        pb.OrderBy(root->order_keys, root->limit);
      }
      plans.push_back(pb.Build());
    }
    coord_status_ = RunStage(std::move(plans), "final merge", &results);
  }

  if (!failed()) {
    if (replicated) {
      // Every shard computed the full answer; shard 0 speaks for all.
      final_ = std::move(results[0]);
    } else if (root->kind == LogicalNode::Kind::kCollect) {
      final_ = ResultSet(root->types);
      for (ResultSet& r : results) final_.Append(std::move(r));
    } else {
      // Coordinator merge spine: each shard returned its own sorted
      // (and limit-truncated) slice; re-sort the union and re-apply
      // the limit for the global order.
      std::vector<int> key_cols;
      std::vector<bool> asc;
      for (const OrderItem& k : root->order_keys) {
        key_cols.push_back(IndexOfName(root->names, k.name));
        asc.push_back(k.ascending);
      }
      struct Ref {
        int shard;
        int64_t row;
      };
      std::vector<Ref> refs;
      for (int s = 0; s < static_cast<int>(results.size()); ++s) {
        for (int64_t r = 0; r < results[s].num_rows(); ++r) {
          refs.push_back(Ref{s, r});
        }
      }
      auto cmp = [&](const Ref& a, const Ref& b) {
        const ResultSet& ra = results[a.shard];
        const ResultSet& rb = results[b.shard];
        for (size_t k = 0; k < key_cols.size(); ++k) {
          const int c = key_cols[k];
          int rel = 0;
          switch (root->types[c]) {
            case LogicalType::kInt32: {
              auto x = ra.I32(a.row, c), y = rb.I32(b.row, c);
              rel = x < y ? -1 : (x > y ? 1 : 0);
              break;
            }
            case LogicalType::kInt64: {
              auto x = ra.I64(a.row, c), y = rb.I64(b.row, c);
              rel = x < y ? -1 : (x > y ? 1 : 0);
              break;
            }
            case LogicalType::kDouble: {
              auto x = ra.F64(a.row, c), y = rb.F64(b.row, c);
              rel = x < y ? -1 : (x > y ? 1 : 0);
              break;
            }
            case LogicalType::kString: {
              rel = ra.Str(a.row, c).compare(rb.Str(b.row, c));
              rel = rel < 0 ? -1 : (rel > 0 ? 1 : 0);
              break;
            }
          }
          if (rel != 0) return asc[k] ? rel < 0 : rel > 0;
        }
        return false;
      };
      std::stable_sort(refs.begin(), refs.end(), cmp);
      int64_t take = static_cast<int64_t>(refs.size());
      if (root->limit >= 0) {
        take = std::min<int64_t>(take, root->limit);
      }
      final_ = ResultSet(root->types);
      for (int64_t i = 0; i < take; ++i) {
        final_.AppendRowFrom(results[refs[i].shard], refs[i].row);
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = coord_status_;
    if (!status_.ok()) final_ = ResultSet();
    done_ = true;
  }
  cv_.notify_all();
}

}  // namespace morsel
