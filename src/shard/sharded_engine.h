#ifndef MORSELDB_SHARD_SHARDED_ENGINE_H_
#define MORSELDB_SHARD_SHARDED_ENGINE_H_

// N in-process shared-nothing Engine shards behind one query façade
// (DESIGN §14). Each shard gets a slice of the machine topology (one
// engine per NUMA-node group first; separate processes are a follow-up
// — the exchange protocol already never shares operator state across
// shards, only the channel mailbox). Plans are authored against the
// *canonical* tables; RegisterTable fragments them across shards and
// CreateQuery hands back a ShardedQuery whose coordinator distributes
// the plan stage by stage over per-shard engines.

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "shard/sharded_table.h"

namespace morsel {

class ShardedQuery;

class ShardedEngine {
 public:
  // Slices `topo` into `num_shards` engine topologies: with at least
  // one socket per shard each engine owns sockets/num_shards sockets,
  // otherwise every shard runs a one-socket engine. `opts` applies per
  // shard (num_workers is per-shard workers; 0 = the slice's cores).
  ShardedEngine(const Topology& topo, int num_shards,
                const EngineOptions& opts = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(engines_.size()); }
  Engine* shard(int i) { return engines_[i].get(); }
  const Topology& shard_topology(int i) const { return shard_topos_[i]; }
  const EngineOptions& options() const { return opts_; }

  // Fragments `canonical` across the shards and loads its sealed rows
  // (see ShardedTable). Must run before queries that scan the table;
  // re-registering a table replaces its fragments.
  ShardedTable* RegisterTable(const Table* canonical, ShardDist dist,
                              std::vector<std::string> hash_keys = {});
  // Fragment set for a canonical table; null if never registered.
  const ShardedTable* FindTable(const Table* canonical) const;

  // A distributed execution of `plan` (authored against canonical
  // tables). The coordinator starts on ShardedQuery::Start.
  std::unique_ptr<ShardedQuery> CreateQuery(const LogicalPlan& plan,
                                            double priority = 1.0);

 private:
  EngineOptions opts_;
  std::vector<Topology> shard_topos_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::unordered_map<const Table*, std::unique_ptr<ShardedTable>> tables_;
};

}  // namespace morsel

#endif  // MORSELDB_SHARD_SHARDED_ENGINE_H_
