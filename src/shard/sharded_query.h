#ifndef MORSELDB_SHARD_SHARDED_QUERY_H_
#define MORSELDB_SHARD_SHARDED_QUERY_H_

// One distributed execution of a LogicalPlan across the shards of a
// ShardedEngine (DESIGN §14). The coordinator thread walks the
// canonical plan bottom-up, maintaining a *distribution property* per
// subtree (arbitrary / hash-partitioned on keys / replicated), and
// turns every point where an operator needs rows it does not own into
// an Exchange: the producing stage runs eagerly on every shard,
// scattering rows into an ExchangeChannel by key hash, and the
// consuming stage re-roots on ExchangeRecv sources. Because the send
// stage has completed by the time the receive side is planned, the
// broadcast-vs-repartition choice is made with the *exact* transferred
// cardinality — the distributed analogue of the single-engine runtime
// feedback of DESIGN §9.
//
// Governance (DESIGN §11) spans the whole distributed QEP: one
// absolute deadline covers every stage, the memory budget divides
// across shards, fault injection reseeds deterministically per
// (stage, shard), and any shard failing a stage fail-fast-cancels its
// siblings; the coordinator reports the originating status.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/query_status.h"
#include "engine/logical_plan.h"
#include "exec/result.h"

namespace morsel {

class Engine;
class ExchangeChannel;
class Query;
class ShardedEngine;

class ShardedQuery {
 public:
  ShardedQuery(ShardedEngine* engine, LogicalPlan plan, double priority);
  ~ShardedQuery();

  ShardedQuery(const ShardedQuery&) = delete;
  ShardedQuery& operator=(const ShardedQuery&) = delete;

  // --- execution (mirrors Query) -------------------------------------------
  void Start();  // launches the coordinator thread; returns immediately
  void Wait();   // blocks until the distributed plan completed
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return done_; });
  }
  ResultSet Execute();  // Start + Wait + TakeResult
  // Merged result; on failure an empty ResultSet carrying the first
  // failing shard's status. Single-shot, like Query::TakeResult.
  ResultSet TakeResult();
  // Cancels every in-flight shard query and all later stages.
  void Cancel();
  // Terminal status (kOk while still running).
  QueryStatus status() const;

  // --- governance (applies to every stage on every shard) ------------------
  void SetMaxWorkers(int n);           // per-shard worker cap
  void SetMemoryBudget(int64_t bytes); // total; divided across shards
  void SetDeadline(std::chrono::milliseconds after);
  void SetFaultInjection(const FaultInjectionOptions& opts);

  // Distributed EXPLAIN: per stage, the coordinator's exchange
  // decisions followed by every shard query's ExplainPlan (which
  // carries the [exchange: ...] runtime annotations). Complete once the
  // query finished.
  std::string ExplainPlan() const;

 private:
  // Distribution property of a per-shard plan fragment set.
  struct Dist {
    enum class Kind { kArbitrary, kHashOn, kReplicated };
    Kind kind = Kind::kArbitrary;
    std::vector<std::string> keys;  // kHashOn: hash-routing columns
  };
  // One subtree, distributed: the open per-shard builders plus how the
  // rows are placed across them.
  struct Part {
    std::vector<PlanBuilder> shards;
    Dist dist;
  };

  void Run();  // coordinator thread body

  Part Distribute(const LogicalNode* n);
  Part DistributeScan(const LogicalNode* n);
  Part DistributeGroupBy(const LogicalNode* n);
  Part DistributeJoin(const LogicalNode* n);

  // Terminates every builder with ExchangeSend on `keys` into a fresh
  // channel over the part's schema and runs that stage. Returns the
  // channel (held in channels_), or null after a failure.
  std::shared_ptr<ExchangeChannel> RunSendStage(
      Part* part, const std::vector<std::string>& keys,
      const std::string& label, std::vector<std::string>* names_out);

  // Runs one stage: per-shard queries with governance applied,
  // fail-fast sibling cancellation, explain capture. Returns the
  // stage's status; on success fills `results` (when non-null) with the
  // per-shard results.
  QueryStatus RunStage(std::vector<LogicalPlan> plans,
                       const std::string& label,
                       std::vector<ResultSet>* results);

  bool failed() const { return !coord_status_.ok(); }
  void LogLine(const std::string& line);

  static double EstimateRows(const LogicalNode* n);

  ShardedEngine* engine_;
  LogicalPlan plan_;
  double priority_;
  int num_shards_;

  std::thread thread_;  // joined by the destructor

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool done_ = false;
  bool cancel_requested_ = false;
  std::vector<Query*> inflight_;  // current stage's shard queries
  QueryStatus status_;            // terminal status, set before done_
  std::string explain_;

  // Coordinator-thread state (no locking needed).
  QueryStatus coord_status_;
  ResultSet final_;
  std::atomic<bool> result_taken_{false};
  int stage_idx_ = 0;
  // Channels must outlive the stages that read them; queries die per
  // stage, channels at coordinator end.
  std::vector<std::shared_ptr<ExchangeChannel>> channels_;

  // Governance knobs (set before Start).
  int max_workers_ = 0;
  int64_t budget_bytes_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  FaultInjectionOptions fault_;
};

}  // namespace morsel

#endif  // MORSELDB_SHARD_SHARDED_QUERY_H_
