#ifndef MORSELDB_SHARD_SHARDED_TABLE_H_
#define MORSELDB_SHARD_SHARDED_TABLE_H_

// A table fragmented across N shared-nothing engine shards (DESIGN
// §14). The *canonical* Table — the one plans are authored against and
// the single-engine oracle executes on — stays where it is; a
// ShardedTable builds one fragment Table per shard (on the shard's
// sliced topology) and copies the canonical rows across, routing each
// row by its distribution policy:
//
//  - kHash: shard = ShardPartitionOf(HashRow(key columns)) — the SAME
//    hash family (high bits) the exchange send path and
//    Table::PartitionOfKey use, so scans of a hash-distributed table
//    are born co-partitioned with exchange output on the same keys.
//  - kRoundRobin: rows dealt across shards; no distribution property.
//  - kReplicated: every shard holds the full table (dimension tables —
//    joins against them need no exchange at all).

#include <memory>
#include <string>
#include <vector>

#include "numa/topology.h"
#include "storage/table.h"

namespace morsel {

enum class ShardDist {
  kHash,
  kRoundRobin,
  kReplicated,
};

class ShardedTable {
 public:
  // `hash_keys` are canonical-schema column names; required (non-empty)
  // for kHash, ignored otherwise. One fragment is created per entry of
  // `shard_topos`, named `<canonical>@shard<i>`.
  ShardedTable(const Table* canonical, ShardDist dist,
               std::vector<std::string> hash_keys,
               const std::vector<Topology>& shard_topos);

  // Copies every sealed canonical row into the fragments and seals
  // them. Single-threaded, load-phase only.
  void Load();

  const Table* canonical() const { return canonical_; }
  ShardDist dist() const { return dist_; }
  const std::vector<std::string>& hash_keys() const { return hash_keys_; }
  int num_shards() const { return static_cast<int>(frags_.size()); }
  Table* fragment(int shard) { return frags_[shard].get(); }
  const Table* fragment(int shard) const { return frags_[shard].get(); }

 private:
  int RouteRow(const Table& src, int part, size_t row, size_t ordinal);

  const Table* canonical_;
  ShardDist dist_;
  std::vector<std::string> hash_keys_;
  std::vector<int> hash_key_cols_;
  std::vector<std::unique_ptr<Table>> frags_;
};

}  // namespace morsel

#endif  // MORSELDB_SHARD_SHARDED_TABLE_H_
