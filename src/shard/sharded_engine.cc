#include "shard/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "shard/sharded_query.h"

namespace morsel {

ShardedEngine::ShardedEngine(const Topology& topo, int num_shards,
                             const EngineOptions& opts)
    : opts_(opts) {
  MORSEL_CHECK(num_shards >= 1);
  // Shared-nothing slicing: with enough sockets each shard owns a
  // contiguous socket group (shard = NUMA domain set); on smaller
  // machines every shard runs a one-socket engine and the shards share
  // cores the way concurrent queries always have.
  const int sockets_per_shard =
      std::max(1, topo.num_sockets() / num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shard_topos_.push_back(Topology(sockets_per_shard,
                                    topo.cores_per_socket(),
                                    topo.interconnect()));
    engines_.push_back(std::make_unique<Engine>(shard_topos_[s], opts_));
  }
}

ShardedEngine::~ShardedEngine() = default;

ShardedTable* ShardedEngine::RegisterTable(
    const Table* canonical, ShardDist dist,
    std::vector<std::string> hash_keys) {
  auto st = std::make_unique<ShardedTable>(canonical, dist,
                                           std::move(hash_keys),
                                           shard_topos_);
  st->Load();
  ShardedTable* raw = st.get();
  tables_[canonical] = std::move(st);
  return raw;
}

const ShardedTable* ShardedEngine::FindTable(const Table* canonical) const {
  auto it = tables_.find(canonical);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::unique_ptr<ShardedQuery> ShardedEngine::CreateQuery(
    const LogicalPlan& plan, double priority) {
  return std::make_unique<ShardedQuery>(this, plan, priority);
}

}  // namespace morsel
