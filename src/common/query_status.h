#ifndef MORSELDB_COMMON_QUERY_STATUS_H_
#define MORSELDB_COMMON_QUERY_STATUS_H_

// Structured terminal disposition of one query execution. Replaces the
// old first-wins error *string* on QueryContext so callers can branch
// on the failure class (retry a deadline, surface a budget breach,
// treat cancellation as benign) without parsing messages.

#include <cstdint>
#include <exception>
#include <string>
#include <utility>

namespace morsel {

enum class StatusCode {
  kOk = 0,
  kCancelled,
  kDeadlineExceeded,
  kMemoryExceeded,
  kInternal,
  // Admission-control dispositions (server front end, DESIGN §12).
  // These describe queries that never started executing: the admission
  // controller either rejected outright (queue full / over capacity) or
  // timed the query out of the wait queue.
  kAdmissionRejected,
  kAdmissionTimeout,
};

const char* StatusCodeName(StatusCode code);

// Stable wire encoding for the server protocol (src/server/wire.h).
// Values are frozen independently of the enum's declaration order:
// append-only, never renumber. Unknown wire values decode to kInternal.
int32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(int32_t wire);

struct QueryStatus {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  // "kMemoryExceeded: query memory budget exceeded (...)"; "kOk" alone.
  std::string ToString() const;

  static QueryStatus Ok() { return {}; }
  static QueryStatus Cancelled(std::string msg = "query cancelled") {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static QueryStatus DeadlineExceeded(
      std::string msg = "query deadline exceeded") {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static QueryStatus MemoryExceeded(std::string msg) {
    return {StatusCode::kMemoryExceeded, std::move(msg)};
  }
  static QueryStatus Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static QueryStatus AdmissionRejected(std::string msg) {
    return {StatusCode::kAdmissionRejected, std::move(msg)};
  }
  static QueryStatus AdmissionTimeout(std::string msg) {
    return {StatusCode::kAdmissionTimeout, std::move(msg)};
  }
};

// The one sanctioned exception in this codebase (see common/macros.h).
// Thrown only from governed checkpoints — the allocation hook in
// NumaAlloc and ExecContext::CheckInterrupt — and caught at exactly the
// worker / Finalize / Prepare boundaries, where it becomes the query's
// QueryStatus and cancels the QEP. It must never escape those
// boundaries and never crosses a public API.
class QueryAbort : public std::exception {
 public:
  explicit QueryAbort(QueryStatus status) : status_(std::move(status)) {}
  const QueryStatus& status() const { return status_; }
  const char* what() const noexcept override {
    return status_.message.c_str();
  }

 private:
  QueryStatus status_;
};

}  // namespace morsel

#endif  // MORSELDB_COMMON_QUERY_STATUS_H_
