#include "common/memory_tracker.h"

namespace morsel {

namespace {
thread_local AllocationGovernor* t_governor = nullptr;
}  // namespace

bool AllocationGovernor::Charge(int64_t bytes) {
  if (reserved >= bytes) {
    reserved -= bytes;
    return true;
  }
  int64_t want = bytes - reserved + kSlackQuantum;
  if (tracker->TryCharge(want)) {
    reserved = kSlackQuantum;
    return true;
  }
  // Near the budget the quantum may not fit; retry for the exact need
  // so a query is only aborted when the allocation itself cannot fit.
  if (tracker->TryCharge(bytes - reserved)) {
    reserved = 0;
    return true;
  }
  return false;
}

void AllocationGovernor::Free(int64_t bytes) {
  tracker->Release(bytes);
}

ScopedAllocationGovernor::ScopedAllocationGovernor(MemoryTracker* tracker,
                                                   FaultInjector* injector)
    : prev_(t_governor) {
  gov_.tracker = tracker;
  gov_.injector = injector;
  t_governor = &gov_;
}

ScopedAllocationGovernor::~ScopedAllocationGovernor() {
  if (gov_.tracker != nullptr && gov_.reserved > 0) {
    gov_.tracker->Release(gov_.reserved);
  }
  t_governor = prev_;
}

AllocationGovernor* ScopedAllocationGovernor::Current() {
  return t_governor;
}

}  // namespace morsel
