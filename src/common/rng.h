#ifndef MORSELDB_COMMON_RNG_H_
#define MORSELDB_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace morsel {

// Deterministic, fast xorshift128+ generator. Workload generators (TPC-H,
// SSB) must be reproducible across runs and platforms, so we do not use
// std::mt19937 whose distributions are implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into two non-zero state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    MORSEL_DCHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace morsel

#endif  // MORSELDB_COMMON_RNG_H_
