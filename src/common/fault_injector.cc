#include "common/fault_injector.h"

#include "common/rng.h"

namespace morsel {

FaultInjector::FaultInjector(const FaultInjectionOptions& opts) {
  if (!opts.enabled) return;
  Rng rng(opts.seed);
  fail_alloc_at_ = opts.fail_alloc_nth;
  if (opts.cancel_within_morsels > 0) {
    cancel_at_ = rng.Uniform(1, opts.cancel_within_morsels);
  }
  if (opts.deadline_within_morsels > 0) {
    deadline_at_ = rng.Uniform(1, opts.deadline_within_morsels);
    // A cancel and a deadline drawn onto the same morsel would race for
    // first-wins; nudge the deadline so each run has one unambiguous
    // expected fault class per checkpoint.
    if (deadline_at_ == cancel_at_) ++deadline_at_;
  }
  stall_every_ = opts.stall_every_checks;
  stall_us_ = opts.stall_us;
}

}  // namespace morsel
