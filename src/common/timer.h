#ifndef MORSELDB_COMMON_TIMER_H_
#define MORSELDB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace morsel {

// Monotonic wall-clock stopwatch used by benches and the scheduler trace.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  // Monotonic microseconds since an arbitrary process-wide origin; used to
  // timestamp scheduler trace events (Figure 13).
  static int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace morsel

#endif  // MORSELDB_COMMON_TIMER_H_
