#ifndef MORSELDB_COMMON_DATE_H_
#define MORSELDB_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace morsel {

// Dates are stored as int32 days since 1970-01-01 (the "date32" encoding
// used by Arrow and most columnar engines). TPC-H and SSB filter ranges
// and extract years/months, so we provide civil-calendar conversions
// (proleptic Gregorian, Howard Hinnant's days-from-civil algorithm).
using Date32 = int32_t;

// Converts a civil date (e.g. 1998, 12, 1) to days since the epoch.
Date32 MakeDate(int year, int month, int day);

// Inverse of MakeDate.
void DateToCivil(Date32 date, int* year, int* month, int* day);

// Extracts the year / month of a date.
int DateYear(Date32 date);
int DateMonth(Date32 date);

// Adds a number of calendar months, clamping the day to the target
// month's length (SQL interval semantics).
Date32 DateAddMonths(Date32 date, int months);

// Adds days / years.
inline Date32 DateAddDays(Date32 date, int days) { return date + days; }
Date32 DateAddYears(Date32 date, int years);

// Parses "YYYY-MM-DD". Returns false on malformed input.
bool ParseDate(std::string_view text, Date32* out);

// Formats as "YYYY-MM-DD".
std::string FormatDate(Date32 date);

}  // namespace morsel

#endif  // MORSELDB_COMMON_DATE_H_
