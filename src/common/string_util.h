#ifndef MORSELDB_COMMON_STRING_UTIL_H_
#define MORSELDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace morsel {

// Matches `value` against a SQL LIKE `pattern` where '%' matches any
// sequence (including empty) and '_' matches exactly one character.
// No escape character (TPC-H/SSB patterns do not need one).
bool LikeMatch(std::string_view value, std::string_view pattern);

inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

inline bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// Splits on a delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

}  // namespace morsel

#endif  // MORSELDB_COMMON_STRING_UTIL_H_
