#ifndef MORSELDB_COMMON_FAULT_INJECTOR_H_
#define MORSELDB_COMMON_FAULT_INJECTOR_H_

// Deterministic, seeded fault injection for chaos-testing the failure
// paths. One FaultInjector lives per query execution (constructed from
// EngineOptions::fault_injection by Query) and is consulted at the two
// governed checkpoint kinds:
//
//  - allocation checkpoints (NumaAlloc under a governor scope):
//    OnTrackedAlloc() trips the Nth tracked allocation with
//    std::bad_alloc, exercising the out-of-memory path at a precise,
//    reproducible point;
//  - morsel / interrupt checkpoints (worker morsel pickup,
//    ExecContext::CheckInterrupt): OnMorselStart() force-cancels or
//    force-expires the query at a seed-randomized morsel count,
//    OnInterruptCheck() stalls the calling worker to simulate a slow or
//    wedged core.
//
// All trip points are derived from the seed up front, so a given
// (plan, options, seed) replays the identical fault.

#include <atomic>
#include <cstdint>

namespace morsel {

struct FaultInjectionOptions {
  bool enabled = false;
  uint64_t seed = 1;
  // Throw std::bad_alloc from exactly the Nth governed allocation
  // (1-based; 0 = never).
  int64_t fail_alloc_nth = 0;
  // Force-cancel the query at a morsel count drawn uniformly from
  // [1, cancel_within_morsels] (0 = never).
  int64_t cancel_within_morsels = 0;
  // Force a deadline expiry at a morsel count drawn uniformly from
  // [1, deadline_within_morsels] (0 = never).
  int64_t deadline_within_morsels = 0;
  // Stall the calling worker for stall_us at every stall_every_checks-th
  // interrupt checkpoint (0 = never).
  int64_t stall_every_checks = 0;
  int64_t stall_us = 100;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectionOptions& opts);

  // Allocation checkpoint: true => this allocation must fail
  // (fires exactly once).
  bool OnTrackedAlloc() {
    if (fail_alloc_at_ == 0) return false;
    return allocs_.fetch_add(1, std::memory_order_relaxed) + 1 ==
           fail_alloc_at_;
  }

  enum class MorselFault { kNone, kCancel, kDeadline };

  // Morsel checkpoint: which fault, if any, to apply to the query now
  // (each fires exactly once).
  MorselFault OnMorselStart() {
    if (cancel_at_ == 0 && deadline_at_ == 0) return MorselFault::kNone;
    int64_t n = morsels_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == cancel_at_) return MorselFault::kCancel;
    if (n == deadline_at_) return MorselFault::kDeadline;
    return MorselFault::kNone;
  }

  // Interrupt checkpoint: microseconds the caller must stall (0 = none).
  int64_t OnInterruptCheck() {
    if (stall_every_ == 0) return 0;
    int64_t n = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
    return n % stall_every_ == 0 ? stall_us_ : 0;
  }

 private:
  int64_t fail_alloc_at_ = 0;
  int64_t cancel_at_ = 0;
  int64_t deadline_at_ = 0;
  int64_t stall_every_ = 0;
  int64_t stall_us_ = 0;
  std::atomic<int64_t> allocs_{0};
  std::atomic<int64_t> morsels_{0};
  std::atomic<int64_t> checks_{0};
};

}  // namespace morsel

#endif  // MORSELDB_COMMON_FAULT_INJECTOR_H_
