#include "common/query_status.h"

namespace morsel {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kCancelled:
      return "kCancelled";
    case StatusCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case StatusCode::kMemoryExceeded:
      return "kMemoryExceeded";
    case StatusCode::kInternal:
      return "kInternal";
  }
  return "k?";
}

std::string QueryStatus::ToString() const {
  if (message.empty()) return StatusCodeName(code);
  return std::string(StatusCodeName(code)) + ": " + message;
}

}  // namespace morsel
