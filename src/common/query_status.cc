#include "common/query_status.h"

namespace morsel {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kCancelled:
      return "kCancelled";
    case StatusCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case StatusCode::kMemoryExceeded:
      return "kMemoryExceeded";
    case StatusCode::kInternal:
      return "kInternal";
    case StatusCode::kAdmissionRejected:
      return "kAdmissionRejected";
    case StatusCode::kAdmissionTimeout:
      return "kAdmissionTimeout";
  }
  return "k?";
}

int32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kCancelled:
      return 1;
    case StatusCode::kDeadlineExceeded:
      return 2;
    case StatusCode::kMemoryExceeded:
      return 3;
    case StatusCode::kInternal:
      return 4;
    case StatusCode::kAdmissionRejected:
      return 5;
    case StatusCode::kAdmissionTimeout:
      return 6;
  }
  return 4;
}

StatusCode StatusCodeFromWire(int32_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kCancelled;
    case 2:
      return StatusCode::kDeadlineExceeded;
    case 3:
      return StatusCode::kMemoryExceeded;
    case 4:
      return StatusCode::kInternal;
    case 5:
      return StatusCode::kAdmissionRejected;
    case 6:
      return StatusCode::kAdmissionTimeout;
  }
  return StatusCode::kInternal;
}

std::string QueryStatus::ToString() const {
  if (message.empty()) return StatusCodeName(code);
  return std::string(StatusCodeName(code)) + ": " + message;
}

}  // namespace morsel
