#include "common/hash.h"

#include <cstring>

namespace morsel {

uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  // Consume 8-byte blocks, then the tail, FNV-1a style per block.
  while (len >= 8) {
    uint64_t block;
    std::memcpy(&block, p, 8);
    h = (h ^ block) * 0x100000001b3ULL;
    p += 8;
    len -= 8;
  }
  uint64_t tail = 0;
  if (len > 0) {
    std::memcpy(&tail, p, len);
    h = (h ^ tail) * 0x100000001b3ULL;
  }
  return Hash64(h);
}

}  // namespace morsel
