#ifndef MORSELDB_COMMON_MEMORY_TRACKER_H_
#define MORSELDB_COMMON_MEMORY_TRACKER_H_

// Per-query memory accounting. One MemoryTracker lives on the
// QueryContext; every NumaAlloc/NumaFree performed *on behalf of that
// query* (worker morsel execution, job Finalize, lowering) charges or
// releases it via a thread-local AllocationGovernor installed by a
// ScopedAllocationGovernor around those boundaries. That indirection is
// what lets one hook cover Arena blocks, RowBuffer (NumaVector) growth,
// and TaggedHashTable slot arrays without threading a tracker pointer
// through every constructor.
//
// Hot-path cost: charges are *reservation-batched* — each governor
// scope holds up to kSlackQuantum bytes of locally reserved budget, so
// a run of small allocations touches the shared atomic once per
// quantum, not once per allocation. Frees release straight to the
// tracker (they are rare relative to bump-pointer allocations).
//
// Query teardown frees (operator state destroyed by ~Query) run outside
// any governor scope and deliberately skip release: the tracker dies
// with the query, and the process-wide NumaAllocatedBytes() counter —
// which the leak checks assert on — is maintained unconditionally
// inside NumaAlloc/NumaFree, not here.

#include <atomic>
#include <cstdint>

namespace morsel {

class FaultInjector;

class MemoryTracker {
 public:
  // budget_bytes == 0 means unlimited (accounting only).
  explicit MemoryTracker(int64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  // Pre-execution configuration only; never changed while workers run.
  void set_budget(int64_t bytes) { budget_ = bytes; }

  // Charges `bytes`; returns false (charging nothing) when the charge
  // would push usage past the budget. The caller aborts the query.
  bool TryCharge(int64_t bytes) {
    int64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (budget_ > 0 && now > budget_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  void Release(int64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t budget() const { return budget_; }

 private:
  int64_t budget_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

// Thread-local allocation-governance record consulted by
// NumaAlloc/NumaFree. Null members mean "ungoverned" for that concern.
struct AllocationGovernor {
  MemoryTracker* tracker = nullptr;
  FaultInjector* injector = nullptr;
  int64_t reserved = 0;  // charged to tracker but not yet handed out

  // Batched charge against `tracker` (which must be non-null). Returns
  // false when the budget is exhausted; nothing is charged in that case.
  bool Charge(int64_t bytes);
  void Free(int64_t bytes);

  static constexpr int64_t kSlackQuantum = 256 * 1024;
};

// RAII installer: pushes {tracker, injector} as the calling thread's
// governor for the scope, restoring the previous one (scopes nest — a
// worker-level scope stays installed across an inner Finalize scope of
// the same query) and returning unused reservation on exit.
class ScopedAllocationGovernor {
 public:
  ScopedAllocationGovernor(MemoryTracker* tracker, FaultInjector* injector);
  ~ScopedAllocationGovernor();

  ScopedAllocationGovernor(const ScopedAllocationGovernor&) = delete;
  ScopedAllocationGovernor& operator=(const ScopedAllocationGovernor&) =
      delete;

  // The innermost governor installed on this thread, or nullptr.
  static AllocationGovernor* Current();

 private:
  AllocationGovernor gov_;
  AllocationGovernor* prev_;
};

}  // namespace morsel

#endif  // MORSELDB_COMMON_MEMORY_TRACKER_H_
