#ifndef MORSELDB_COMMON_HASH_H_
#define MORSELDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace morsel {

// 64-bit mixers and hash functions used throughout the engine. The join
// hash table (§4.2 of the paper) derives both the slot index (high bits)
// and the 16-bit pointer tag from the same 64-bit hash, so these must have
// well-distributed high bits; we use finalizer-style multiply-xorshift
// mixers (Murmur3/SplitMix64 lineage).

// Mixes a 64-bit value; suitable as an integer key hash.
inline uint64_t Hash64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two hashes (order-dependent), for multi-column keys.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Hash64(a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL);
}

// Hashes an arbitrary byte string (FNV-1a core with a 64-bit finalizer).
uint64_t HashBytes(const void* data, size_t len);

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace morsel

#endif  // MORSELDB_COMMON_HASH_H_
