#include "common/date.h"

#include <cstdio>

#include "common/macros.h"

namespace morsel {

namespace {

// Days in month, non-leap year.
constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int LastDayOfMonth(int y, int m) {
  if (m == 2 && IsLeap(y)) return 29;
  return kDaysInMonth[m - 1];
}

}  // namespace

Date32 MakeDate(int year, int month, int day) {
  // days_from_civil (Hinnant): shift year so the leap day is last.
  const int y = year - (month <= 2);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void DateToCivil(Date32 date, int* year, int* month, int* day) {
  // civil_from_days (Hinnant).
  int z = date + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

int DateYear(Date32 date) {
  int y, m, d;
  DateToCivil(date, &y, &m, &d);
  return y;
}

int DateMonth(Date32 date) {
  int y, m, d;
  DateToCivil(date, &y, &m, &d);
  return m;
}

Date32 DateAddMonths(Date32 date, int months) {
  int y, m, d;
  DateToCivil(date, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  int ny = total / 12;
  int nm = total % 12;
  if (nm < 0) {
    nm += 12;
    --ny;
  }
  ++nm;
  int nd = d;
  int last = LastDayOfMonth(ny, nm);
  if (nd > last) nd = last;
  return MakeDate(ny, nm, nd);
}

Date32 DateAddYears(Date32 date, int years) {
  return DateAddMonths(date, years * 12);
}

bool ParseDate(std::string_view text, Date32* out) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  auto digits = [&](int pos, int len, int* value) {
    int v = 0;
    for (int i = 0; i < len; ++i) {
      char c = text[pos + i];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    *value = v;
    return true;
  };
  int y, m, d;
  if (!digits(0, 4, &y) || !digits(5, 2, &m) || !digits(8, 2, &d)) {
    return false;
  }
  if (m < 1 || m > 12 || d < 1 || d > LastDayOfMonth(y, m)) return false;
  *out = MakeDate(y, m, d);
  return true;
}

std::string FormatDate(Date32 date) {
  int y, m, d;
  DateToCivil(date, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return std::string(buf);
}

}  // namespace morsel
