#ifndef MORSELDB_COMMON_MACROS_H_
#define MORSELDB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking. morselDB does not use exceptions (Google style);
// violated invariants print a diagnostic and abort. MORSEL_CHECK is always
// on; MORSEL_DCHECK compiles out in release builds (NDEBUG).
#define MORSEL_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MORSEL_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define MORSEL_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MORSEL_CHECK failed: %s (%s) at %s:%d\n", #cond,\
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define MORSEL_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define MORSEL_DCHECK(cond) MORSEL_CHECK(cond)
#endif

// Read-prefetch into a low locality level: the staged probe pipelines
// (DESIGN.md §5) touch each prefetched line exactly once.
#if defined(__GNUC__) || defined(__clang__)
#define MORSEL_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define MORSEL_PREFETCH(addr) ((void)(addr))
#endif

namespace morsel {

// Size every contended structure is aligned to; matches common x86 lines.
inline constexpr int kCacheLineSize = 64;

}  // namespace morsel

#endif  // MORSELDB_COMMON_MACROS_H_
