#include "common/string_util.h"

namespace morsel {

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer wildcard matcher with backtracking to the most
  // recent '%'. O(n*m) worst case but linear for typical TPC-H patterns.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos;  // pattern pos after last '%'
  size_t star_v = 0;                       // value pos matched by that '%'
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = ++p;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace morsel
