#include "engine/logical_plan.h"

#include "common/hash.h"
#include "common/macros.h"
#include "exec/exchange.h"

namespace morsel {

int IndexOfName(const std::vector<std::string>& names,
                std::string_view name) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  MORSEL_CHECK_MSG(false, std::string(name).c_str());
  return -1;
}

int ColScope::Index(std::string_view name) const {
  return IndexOfName(names_, name);
}

namespace {

int CountNodes(const LogicalNode* n) {
  if (n == nullptr) return 0;
  return 1 + CountNodes(n->input.get()) + CountNodes(n->build.get());
}

bool NodeIsStale(const LogicalNode* n) {
  if (n == nullptr) return false;
  if (n->kind == LogicalNode::Kind::kScan &&
      n->table->epoch() != n->table_epoch) {
    return true;
  }
  return NodeIsStale(n->input.get()) || NodeIsStale(n->build.get());
}

// Deep copy with fresh scan statistics. Every leaf is a scan, so no
// subtree can be structurally shared with the original.
std::shared_ptr<const LogicalNode> RefreshNode(const LogicalNode* n) {
  auto out = std::make_shared<LogicalNode>();
  out->kind = n->kind;
  if (n->input != nullptr) out->input = RefreshNode(n->input.get());
  if (n->build != nullptr) out->build = RefreshNode(n->build.get());
  out->names = n->names;
  out->types = n->types;
  out->table = n->table;
  out->column_ids = n->column_ids;
  if (n->kind == LogicalNode::Kind::kScan) {
    out->scan_rows = static_cast<double>(n->table->NumRows());
    for (int col : n->column_ids) {
      out->scan_sorted_frac.push_back(
          n->table->ColumnSortedFraction(col));
    }
    out->table_epoch = n->table->epoch();
  } else {
    out->scan_rows = n->scan_rows;
    out->scan_sorted_frac = n->scan_sorted_frac;
    out->table_epoch = n->table_epoch;
  }
  if (n->predicate != nullptr) out->predicate = n->predicate->Clone();
  // Shared, not copied: the refreshed plan keeps feeding the same
  // learned-order cell, so re-lowered executions still start warm.
  out->learned_conjunct_order = n->learned_conjunct_order;
  for (const ExprPtr& e : n->exprs) out->exprs.push_back(e->Clone());
  out->probe_keys = n->probe_keys;
  out->build_keys = n->build_keys;
  out->build_payload = n->build_payload;
  out->join_kind = n->join_kind;
  out->strategy = n->strategy;
  out->residual = n->residual;
  out->group_keys = n->group_keys;
  for (const AggItem& a : n->aggs) {
    out->aggs.push_back(AggItem{
        a.func, a.input != nullptr ? a.input->Clone() : nullptr,
        a.out_name});
  }
  out->order_keys = n->order_keys;
  out->limit = n->limit;
  out->exchange = n->exchange;
  out->exchange_shard = n->exchange_shard;
  out->exchange_keys = n->exchange_keys;
  return out;
}

// --- PlanFingerprint -------------------------------------------------------

void FpU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
template <typename T>
void FpVal(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void FpStr(std::string* out, std::string_view s) {
  FpVal(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}
void FpStrs(std::string* out, const std::vector<std::string>& v) {
  FpVal(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) FpStr(out, s);
}

void FingerprintNode(const LogicalNode* n, std::string* out) {
  if (n == nullptr) {
    FpU8(out, 0);
    return;
  }
  FpU8(out, static_cast<uint8_t>(n->kind) + 1);
  FpStrs(out, n->names);
  FpVal(out, static_cast<uint32_t>(n->types.size()));
  for (LogicalType t : n->types) FpU8(out, static_cast<uint8_t>(t));
  switch (n->kind) {
    case LogicalNode::Kind::kScan:
      // Table identity, not contents: two plans over the same Table
      // object dedupe; statistics and epochs stay out so refreshed
      // copies of a plan keep their cache slot.
      FpVal(out, reinterpret_cast<uintptr_t>(n->table));
      FpVal(out, static_cast<uint32_t>(n->column_ids.size()));
      for (int c : n->column_ids) FpVal(out, static_cast<int32_t>(c));
      break;
    case LogicalNode::Kind::kFilter:
      n->predicate->AppendFingerprint(out);
      break;
    case LogicalNode::Kind::kProject:
      FpVal(out, static_cast<uint32_t>(n->exprs.size()));
      for (const ExprPtr& e : n->exprs) e->AppendFingerprint(out);
      break;
    case LogicalNode::Kind::kJoin: {
      FpStrs(out, n->probe_keys);
      FpStrs(out, n->build_keys);
      FpStrs(out, n->build_payload);
      FpU8(out, static_cast<uint8_t>(n->join_kind));
      FpU8(out, n->strategy.has_value()
                    ? static_cast<uint8_t>(*n->strategy) + 1
                    : 0);
      if (n->residual != nullptr) {
        // The factory is opaque; fingerprint the tree it produces
        // against this node's residual scope (probe columns + build
        // payload), mirroring the lowering pass. The contract that it
        // be a pure function of the scope makes this faithful.
        std::vector<std::string> rnames = n->input->names;
        std::vector<LogicalType> rtypes = n->input->types;
        for (const std::string& p : n->build_payload) {
          int bi = IndexOfName(n->build->names, p);
          rnames.push_back(p);
          rtypes.push_back(n->build->types[bi]);
        }
        ExprPtr r = n->residual(ColScope(std::move(rnames),
                                         std::move(rtypes)));
        FpU8(out, 1);
        r->AppendFingerprint(out);
      } else {
        FpU8(out, 0);
      }
      break;
    }
    case LogicalNode::Kind::kGroupBy:
      FpStrs(out, n->group_keys);
      FpVal(out, static_cast<uint32_t>(n->aggs.size()));
      for (const AggItem& a : n->aggs) {
        FpU8(out, static_cast<uint8_t>(a.func));
        FpStr(out, a.out_name);
        if (a.input != nullptr) {
          FpU8(out, 1);
          a.input->AppendFingerprint(out);
        } else {
          FpU8(out, 0);
        }
      }
      break;
    case LogicalNode::Kind::kOrderBy:
      FpVal(out, static_cast<uint32_t>(n->order_keys.size()));
      for (const OrderItem& o : n->order_keys) {
        FpStr(out, o.name);
        FpU8(out, o.ascending ? 1 : 0);
      }
      FpVal(out, static_cast<int64_t>(n->limit));
      break;
    case LogicalNode::Kind::kCollect:
      break;
    case LogicalNode::Kind::kExchangeSend:
    case LogicalNode::Kind::kExchangeRecv:
      // Channel identity, like table identity for scans: two stage
      // plans match only if they talk through the same mailbox. Stage
      // plans are coordinator-internal and never hit the statement
      // cache, but the fingerprint must still be sound.
      FpVal(out, reinterpret_cast<uintptr_t>(n->exchange.get()));
      FpVal(out, static_cast<int32_t>(n->exchange_shard));
      FpStrs(out, n->exchange_keys);
      break;
  }
  FingerprintNode(n->input.get(), out);
  FingerprintNode(n->build.get(), out);
}

}  // namespace

int LogicalPlan::num_nodes() const { return CountNodes(root_.get()); }

uint64_t PlanFingerprint(const LogicalPlan& plan) {
  MORSEL_CHECK(plan.valid());
  std::string bytes;
  bytes.reserve(256);
  FingerprintNode(plan.root(), &bytes);
  return HashBytes(bytes.data(), bytes.size());
}

bool PlanIsStale(const LogicalPlan& plan) {
  return plan.valid() && NodeIsStale(plan.root());
}

LogicalPlan RefreshScanStats(const LogicalPlan& plan) {
  MORSEL_CHECK(plan.valid());
  return LogicalPlan(RefreshNode(plan.root()));
}

PlanBuilder PlanBuilder::Scan(const Table* table,
                              std::vector<std::string> columns) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = LogicalNode::Kind::kScan;
  node->table = table;
  for (const std::string& c : columns) {
    int idx = table->schema().IndexOf(c);
    node->column_ids.push_back(idx);
    node->types.push_back(table->schema().field(idx).type);
    // Storage-side sortedness probe, sampled here (build time) and kept
    // for the plan's lifetime: it is cheap (<= ~8k pair compares per
    // column, cached in the column), and freezing it keeps repeated
    // lowerings of a prepared plan deterministic.
    node->scan_sorted_frac.push_back(table->ColumnSortedFraction(idx));
  }
  node->names = std::move(columns);
  node->scan_rows = static_cast<double>(table->NumRows());
  node->table_epoch = table->epoch();
  return PlanBuilder(std::move(node));
}

PlanBuilder PlanBuilder::ExchangeRecv(
    std::shared_ptr<ExchangeChannel> channel, int shard,
    std::vector<std::string> columns, double est_rows) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = LogicalNode::Kind::kExchangeRecv;
  node->types = channel->types();
  MORSEL_CHECK(columns.size() == node->types.size());
  node->names = std::move(columns);
  node->scan_rows = est_rows;
  // No sortedness statistics survive an exchange: rows interleave
  // across senders, workers and buckets.
  node->scan_sorted_frac.assign(node->types.size(), 0.0);
  node->exchange = std::move(channel);
  node->exchange_shard = shard;
  return PlanBuilder(std::move(node));
}

LogicalNode* PlanBuilder::Wrap(LogicalNode::Kind kind) {
  MORSEL_CHECK_MSG(node_ != nullptr && !terminal_,
                   "plan already terminated or built");
  auto next = std::make_shared<LogicalNode>();
  next->kind = kind;
  next->input = std::move(node_);
  // Default scope: unchanged (operators that reshape it overwrite).
  next->names = next->input->names;
  next->types = next->input->types;
  node_ = std::move(next);
  return node_.get();
}

PlanBuilder& PlanBuilder::Filter(ExprPtr predicate) {
  LogicalNode* n = Wrap(LogicalNode::Kind::kFilter);
  n->predicate = std::move(predicate);
  n->learned_conjunct_order = std::make_shared<std::atomic<uint64_t>>(0);
  return *this;
}

PlanBuilder& PlanBuilder::Project(std::vector<NamedExpr> exprs) {
  LogicalNode* n = Wrap(LogicalNode::Kind::kProject);
  n->names.clear();
  n->types.clear();
  for (NamedExpr& ne : exprs) {
    n->names.push_back(std::move(ne.name));
    n->types.push_back(ne.expr->type());
    n->exprs.push_back(std::move(ne.expr));
  }
  return *this;
}

PlanBuilder& PlanBuilder::Join(
    PlanBuilder build, std::vector<std::string> probe_keys,
    std::vector<std::string> build_keys,
    std::vector<std::string> build_payload, JoinKind kind,
    std::function<ExprPtr(const ColScope&)> residual,
    std::optional<JoinStrategy> strategy) {
  MORSEL_CHECK(probe_keys.size() == build_keys.size());
  MORSEL_CHECK_MSG(build.node_ != nullptr && !build.terminal_,
                   "join build side already terminated or built");
  // Resolve the names now so a malformed plan fails at build, not at
  // lowering (Index aborts on unknown names), and so the output schema
  // is known.
  ColScope probe_scope = scope();
  ColScope build_scope = build.scope();
  for (const std::string& k : probe_keys) (void)probe_scope.Index(k);
  for (const std::string& k : build_keys) (void)build_scope.Index(k);

  LogicalNode* n = Wrap(LogicalNode::Kind::kJoin);
  n->build = std::move(build.node_);
  if (kind != JoinKind::kSemi && kind != JoinKind::kAnti) {
    for (const std::string& p : build_payload) {
      n->names.push_back(p);
      n->types.push_back(build_scope.Type(p));
    }
  } else {
    for (const std::string& p : build_payload) (void)build_scope.Index(p);
  }
  n->probe_keys = std::move(probe_keys);
  n->build_keys = std::move(build_keys);
  n->build_payload = std::move(build_payload);
  n->join_kind = kind;
  n->strategy = strategy;
  n->residual = std::move(residual);
  return *this;
}

PlanBuilder& PlanBuilder::GroupBy(std::vector<std::string> keys,
                                  std::vector<AggItem> aggs) {
  ColScope in_scope = scope();
  LogicalNode* n = Wrap(LogicalNode::Kind::kGroupBy);
  n->names.clear();
  n->types.clear();
  for (const std::string& k : keys) {
    n->names.push_back(k);
    n->types.push_back(in_scope.Type(k));
  }
  for (const AggItem& a : aggs) {
    LogicalType input_type =
        a.input == nullptr ? LogicalType::kInt32 : a.input->type();
    if (a.input == nullptr) MORSEL_CHECK(a.func == AggFunc::kCount);
    n->names.push_back(a.out_name);
    n->types.push_back(AggStateType(a.func, input_type));
  }
  n->group_keys = std::move(keys);
  n->aggs = std::move(aggs);
  return *this;
}

void PlanBuilder::OrderBy(std::vector<OrderItem> keys, int64_t limit) {
  ColScope in_scope = scope();
  for (const OrderItem& k : keys) (void)in_scope.Index(k.name);
  LogicalNode* n = Wrap(LogicalNode::Kind::kOrderBy);
  n->order_keys = std::move(keys);
  n->limit = limit;
  terminal_ = true;
}

void PlanBuilder::CollectResult() {
  Wrap(LogicalNode::Kind::kCollect);
  terminal_ = true;
}

void PlanBuilder::ExchangeSend(std::shared_ptr<ExchangeChannel> channel,
                               int shard, std::vector<std::string> keys) {
  ColScope in_scope = scope();
  MORSEL_CHECK_MSG(
      in_scope.types() == channel->types(),
      "exchange send input schema must match the channel schema");
  for (const std::string& k : keys) (void)in_scope.Index(k);
  LogicalNode* n = Wrap(LogicalNode::Kind::kExchangeSend);
  n->exchange = std::move(channel);
  n->exchange_shard = shard;
  n->exchange_keys = std::move(keys);
  terminal_ = true;
}

LogicalPlan PlanBuilder::Build() {
  MORSEL_CHECK_MSG(node_ != nullptr, "plan already built");
  MORSEL_CHECK_MSG(terminal_,
                   "plan has no terminal (OrderBy/CollectResult)");
  return LogicalPlan(std::move(node_));
}

}  // namespace morsel
