#include "engine/query.h"

#include <algorithm>
#include <cmath>

#include "exec/scan.h"

namespace morsel {

int ColScope::Index(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  MORSEL_CHECK_MSG(false, std::string(name).c_str());
  return -1;
}

Query::Query(Engine* engine, int id, double priority)
    : engine_(engine),
      context_(id, priority),
      qep_(&context_, engine->dispatcher(),
           engine->options().serialize_roots) {
  context_.set_num_worker_slots(engine->pool()->num_worker_slots());
}

Query::~Query() {
  // A still-running query must not outlive its operator state: cancel and
  // drain before tearing down. The grace period for workers still holding
  // job pointers runs in ~QepObject, right before the jobs are freed.
  if (started_ && !context_.done()) {
    Cancel();
    Wait();
  }
}

PlanBuilder Query::Scan(const Table* table,
                        std::vector<std::string> columns) {
  std::vector<int> ids;
  std::vector<LogicalType> types;
  std::vector<double> fracs;
  for (const std::string& c : columns) {
    int idx = table->schema().IndexOf(c);
    ids.push_back(idx);
    types.push_back(table->schema().field(idx).type);
    // Storage-side sortedness probe, computed eagerly for every scanned
    // column: it is sampled (<= ~8k pair compares per column), cached in
    // the column for the table's lifetime, and this keeps the planner
    // plumbing a plain per-column value instead of lazy thunks. Revisit
    // if scan-heavy plan construction ever shows up in profiles.
    fracs.push_back(table->ColumnSortedFraction(idx));
  }
  PlanBuilder pb(this,
                 std::make_unique<TableScanSource>(table, std::move(ids)),
                 std::move(columns), std::move(types), {});
  pb.est_rows_ = static_cast<double>(table->NumRows());
  pb.sorted_frac_ = std::move(fracs);
  return pb;
}

void Query::Start() {
  MORSEL_CHECK_MSG(!started_, "query already started");
  started_ = true;
  qep_.Start(engine_->pool()->external_context());
}

void Query::Wait() { context_.Wait(); }

ResultSet Query::Execute() {
  Start();
  Wait();
  return TakeResult();
}

ResultSet Query::TakeResult() {
  MORSEL_CHECK_MSG(context_.error().empty(), context_.error().c_str());
  MORSEL_CHECK_MSG(result_fn_ != nullptr,
                   "plan has no terminal (OrderBy/CollectResult)");
  return result_fn_();
}

void Query::Cancel() {
  engine_->dispatcher()->CancelQuery(&context_,
                                     engine_->pool()->external_context());
}

int Query::AddExecJob(std::string name, std::unique_ptr<Pipeline> pipeline,
                      std::vector<int> deps) {
  const EngineOptions& opts = engine_->options();
  auto job = std::make_unique<ExecPipelineJob>(
      &context_, std::move(name), std::move(pipeline),
      engine_->queue_options(), opts.tagging,
      opts.static_division ? engine_->num_workers() : 0,
      opts.batched_probe);
  return qep_.AddPipeline(std::move(job), std::move(deps));
}

int Query::AddJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps) {
  return qep_.AddPipeline(std::move(job), std::move(deps));
}

PlanBuilder::PlanBuilder(Query* query, std::unique_ptr<Source> source,
                         std::vector<std::string> names,
                         std::vector<LogicalType> types,
                         std::vector<int> deps)
    : query_(query),
      source_(std::move(source)),
      names_(std::move(names)),
      types_(std::move(types)),
      deps_(std::move(deps)),
      sorted_frac_(names_.size(), -1.0) {}

PlanBuilder& PlanBuilder::Filter(ExprPtr predicate) {
  ops_.push_back(std::make_unique<FilterOp>(std::move(predicate)));
  // Generic selectivity guess; filtering preserves row order, so the
  // per-column sortedness statistics stand.
  est_rows_ *= 0.33;
  return *this;
}

PlanBuilder& PlanBuilder::Project(std::vector<NamedExpr> exprs) {
  std::vector<ExprPtr> list;
  std::vector<std::string> names;
  std::vector<LogicalType> types;
  std::vector<double> fracs;
  for (NamedExpr& ne : exprs) {
    // Bare column references carry their sortedness stat through the
    // projection; computed columns are unknown.
    int src = ne.expr->AsColumnIndex();
    fracs.push_back(src >= 0 ? sorted_frac_[src] : -1.0);
    names.push_back(std::move(ne.name));
    types.push_back(ne.expr->type());
    list.push_back(std::move(ne.expr));
  }
  ops_.push_back(std::make_unique<MapOp>(std::move(list)));
  names_ = std::move(names);
  types_ = std::move(types);
  sorted_frac_ = std::move(fracs);
  return *this;
}

int PlanBuilder::CloseInto(Sink* sink, const std::string& name) {
  MORSEL_CHECK_MSG(source_ != nullptr, "pipeline already closed");
  auto pipeline = std::make_unique<Pipeline>(std::move(source_),
                                             std::move(ops_), sink);
  std::string full_name = name_prefix_.empty() ? name : name_prefix_ + name;
  name_prefix_.clear();
  int id =
      query_->AddExecJob(std::move(full_name), std::move(pipeline),
                         std::move(deps_));
  deps_.clear();
  ops_.clear();
  return id;
}

PlanBuilder::JoinBuildPlan PlanBuilder::PrepareJoinBuild(
    PlanBuilder& build, const std::vector<std::string>& build_keys,
    const std::vector<std::string>& build_payload,
    const std::function<ExprPtr(const ColScope&)>& residual) {
  JoinBuildPlan plan;
  // Re-order the build pipeline's output to [keys..., payload...].
  std::vector<NamedExpr> build_exprs;
  for (const std::string& k : build_keys) {
    build_exprs.push_back(NamedExpr{k, build.Col(k)});
    plan.build_types.push_back(build.ColType(k));
  }
  for (const std::string& p : build_payload) {
    build_exprs.push_back(NamedExpr{p, build.Col(p)});
    plan.build_types.push_back(build.ColType(p));
    plan.payload_types.push_back(build.ColType(p));
  }
  build.Project(std::move(build_exprs));

  if (residual != nullptr) {
    // Residual scope: this side's columns followed by the emitted build
    // payload (matching the combined chunk both probe paths produce).
    std::vector<std::string> rnames = names_;
    std::vector<LogicalType> rtypes = types_;
    for (size_t p = 0; p < build_payload.size(); ++p) {
      rnames.push_back(build_payload[p]);
      rtypes.push_back(plan.payload_types[p]);
    }
    plan.residual =
        residual(ColScope(std::move(rnames), std::move(rtypes)));
  }
  return plan;
}

PlanBuilder& PlanBuilder::HashJoin(
    PlanBuilder build, std::vector<std::string> probe_keys,
    std::vector<std::string> build_keys,
    std::vector<std::string> build_payload, JoinKind kind,
    std::function<ExprPtr(const ColScope&)> residual) {
  MORSEL_CHECK(probe_keys.size() == build_keys.size());
  const int num_keys = static_cast<int>(build_keys.size());
  JoinBuildPlan plan =
      PrepareJoinBuild(build, build_keys, build_payload, residual);

  JoinState* js = query_->Own<JoinState>(plan.build_types, num_keys, kind,
                                         query_->num_worker_slots());
  HashBuildSink* build_sink = query_->Own<HashBuildSink>(js);
  int build_job = build.CloseInto(build_sink, "join-build");
  int insert_job = query_->AddJob(
      std::make_unique<HashInsertJob>(query_->context(), "join-insert", js,
                                      query_->engine()->queue_options()),
      {build_job});

  // Probe continues this pipeline.
  std::vector<int> probe_cols;
  for (const std::string& k : probe_keys) {
    probe_cols.push_back(scope().Index(k));
  }
  std::vector<int> out_fields;
  for (size_t p = 0; p < build_payload.size(); ++p) {
    out_fields.push_back(num_keys + static_cast<int>(p));
  }

  ops_.push_back(std::make_unique<HashProbeOp>(
      js, std::move(probe_cols), std::move(out_fields),
      std::move(plan.residual)));
  deps_.push_back(insert_job);

  // Semi/anti emit probe columns only; other kinds append the payload.
  if (kind != JoinKind::kSemi && kind != JoinKind::kAnti) {
    for (size_t p = 0; p < build_payload.size(); ++p) {
      names_.push_back(build_payload[p]);
      types_.push_back(plan.payload_types[p]);
      sorted_frac_.push_back(-1.0);
    }
  }
  return *this;
}

PlanBuilder& PlanBuilder::MergeJoin(
    PlanBuilder build, std::vector<std::string> probe_keys,
    std::vector<std::string> build_keys,
    std::vector<std::string> build_payload, JoinKind kind,
    std::function<ExprPtr(const ColScope&)> residual) {
  MORSEL_CHECK(probe_keys.size() == build_keys.size());
  const int num_keys = static_cast<int>(build_keys.size());
  JoinBuildPlan plan =
      PrepareJoinBuild(build, build_keys, build_payload, residual);

  std::vector<int> probe_cols;
  for (const std::string& k : probe_keys) {
    probe_cols.push_back(scope().Index(k));
  }

  // Oversubscribe the output partitioning (factor x workers): under
  // separator skew a heavy partition is one morsel, so finer partitions
  // keep the tail stealable instead of serializing on one worker.
  const int num_parts =
      query_->engine()->num_workers() *
      std::max(1, query_->engine()->options().merge_partition_factor);
  MergeJoinState* js = query_->Own<MergeJoinState>(
      types_, std::move(probe_cols), plan.build_types, num_keys, kind,
      query_->num_worker_slots(), num_parts);
  js->set_residual(std::move(plan.residual));

  // Build side: materialize NUMA-local runs, then sort each run.
  RunMaterializeSink* build_sink =
      query_->Own<RunMaterializeSink>(js->right());
  int build_mat = build.CloseInto(build_sink, "merge-build-materialize");
  int build_sort = query_->AddJob(
      std::make_unique<LocalSortRunsJob>(
          query_->context(), "merge-build-sort", js->right(),
          query_->engine()->queue_options()),
      {build_mat});

  // Probe side: unlike the hash join's streaming probe, the merge join
  // breaks this pipeline too — materialize and sort it the same way.
  RunMaterializeSink* probe_sink =
      query_->Own<RunMaterializeSink>(js->left());
  int probe_mat = CloseInto(probe_sink, "merge-probe-materialize");
  int probe_sort = query_->AddJob(
      std::make_unique<LocalSortRunsJob>(
          query_->context(), "merge-probe-sort", js->left(),
          query_->engine()->queue_options()),
      {probe_mat});

  // Continue from the partition-merge-join source; partition planning
  // happens in its MakeRanges once both sorts completed.
  source_ = std::make_unique<MergeJoinSource>(js);
  deps_ = {probe_sort, build_sort};
  name_prefix_ = "partition-merge-join+";
  // Each partition-morsel emits in key order, so downstream runs see few
  // ascending key segments (absorbed by the natural-merge fast path);
  // every other column's order is destroyed by the sort.
  sorted_frac_.assign(names_.size(), -1.0);
  for (const std::string& k : probe_keys) {
    sorted_frac_[scope().Index(k)] = 1.0;
  }
  if (kind != JoinKind::kSemi && kind != JoinKind::kAnti) {
    for (size_t p = 0; p < build_payload.size(); ++p) {
      names_.push_back(build_payload[p]);
      types_.push_back(plan.payload_types[p]);
      sorted_frac_.push_back(-1.0);
    }
  }
  return *this;
}

JoinStrategy PlanBuilder::ChooseJoinStrategy(
    const PlanBuilder& build, const std::vector<std::string>& probe_keys,
    const std::vector<std::string>& build_keys) const {
  // Tiny inputs: the merge join's two extra materialize+sort pipelines
  // cost more than any algorithmic edge — hash unconditionally.
  constexpr double kMinRowsForMerge = 4096.0;
  if (est_rows_ < kMinRowsForMerge || build.est_rows() < kMinRowsForMerge) {
    return JoinStrategy::kHash;
  }
  // A small dimension build stays hash even when sorted: probing a
  // cache-resident table beats materializing the whole probe side. The
  // merge join's win region is a build side of comparable cardinality,
  // where the hash join must construct and chain-walk a table as large
  // as the probe's working set (BENCH_micro_merge_join presorted-bigbuild:
  // merge ~1.6x faster; presorted small-build: hash ~1.5x faster).
  constexpr double kMinBuildProbeRatio = 0.25;
  if (build.est_rows() < kMinBuildProbeRatio * est_rows_) {
    return JoinStrategy::kHash;
  }
  // Sortedness probe on the leading key column of both sides. Near-
  // sorted inputs make the merge join's local sorts degenerate to
  // detection scans (RunSet presorted / natural-merge fast paths) and
  // its accesses sequential; on everything else the hash join leads by
  // multiples (BENCH_micro_merge_join).
  constexpr double kSortednessBar = 0.90;
  if (SortedFracOf(probe_keys[0]) >= kSortednessBar &&
      build.SortedFracOf(build_keys[0]) >= kSortednessBar) {
    return JoinStrategy::kMerge;
  }
  return JoinStrategy::kHash;
}

PlanBuilder& PlanBuilder::Join(
    PlanBuilder build, std::vector<std::string> probe_keys,
    std::vector<std::string> build_keys,
    std::vector<std::string> build_payload, JoinKind kind,
    std::function<ExprPtr(const ColScope&)> residual,
    std::optional<JoinStrategy> strategy) {
  // Same invariant HashJoin/MergeJoin enforce, checked up front so the
  // adaptive path fails a malformed plan cleanly instead of indexing
  // into a too-short key list.
  MORSEL_CHECK(probe_keys.size() == build_keys.size());
  JoinStrategy s = strategy.has_value()
                       ? *strategy
                       : query_->engine()->options().join_strategy;
  if (s == JoinStrategy::kAdaptive) {
    s = probe_keys.empty()
            ? JoinStrategy::kHash
            : ChooseJoinStrategy(build, probe_keys, build_keys);
  }
  if (s == JoinStrategy::kMerge && kind != JoinKind::kRightOuterMark) {
    return MergeJoin(std::move(build), std::move(probe_keys),
                     std::move(build_keys), std::move(build_payload), kind,
                     std::move(residual));
  }
  return HashJoin(std::move(build), std::move(probe_keys),
                  std::move(build_keys), std::move(build_payload), kind,
                  std::move(residual));
}

PlanBuilder& PlanBuilder::GroupBy(std::vector<std::string> keys,
                                  std::vector<AggItem> aggs) {
  // Phase-1 input chunk: [keys..., one input column per aggregate].
  std::vector<ExprPtr> map_exprs;
  std::vector<LogicalType> key_types;
  for (const std::string& k : keys) {
    map_exprs.push_back(Col(k));
    key_types.push_back(ColType(k));
  }
  std::vector<AggSpec> specs;
  for (size_t j = 0; j < aggs.size(); ++j) {
    AggSpec spec;
    spec.func = aggs[j].func;
    spec.input_col = static_cast<int>(keys.size() + j);
    if (aggs[j].input == nullptr) {
      MORSEL_CHECK(aggs[j].func == AggFunc::kCount);
      spec.input_type = LogicalType::kInt32;
      map_exprs.push_back(ConstI32(0));  // placeholder, never read
    } else {
      spec.input_type = aggs[j].input->type();
      map_exprs.push_back(std::move(aggs[j].input));
    }
    specs.push_back(std::move(spec));
  }
  ops_.push_back(std::make_unique<MapOp>(std::move(map_exprs)));

  GroupByState* gs = query_->Own<GroupByState>(
      key_types, specs, query_->num_worker_slots());
  AggPhase1Sink* sink = query_->Own<AggPhase1Sink>(gs);
  int phase1 = CloseInto(sink, "agg-phase1");

  // Continue from the aggregation output.
  source_ = std::make_unique<AggPartitionSource>(gs);
  deps_ = {phase1};
  names_ = std::move(keys);
  types_ = key_types;
  for (size_t j = 0; j < aggs.size(); ++j) {
    names_.push_back(aggs[j].out_name);
    types_.push_back(gs->state_type(static_cast<int>(j)));
  }
  // Group count guess; hash-partitioned output has no usable order.
  est_rows_ = std::max(1.0, std::sqrt(est_rows_));
  sorted_frac_.assign(names_.size(), -1.0);
  return *this;
}

void PlanBuilder::OrderBy(std::vector<OrderItem> keys, int64_t limit) {
  std::vector<SortKey> sort_keys;
  for (const OrderItem& k : keys) {
    sort_keys.push_back(SortKey{scope().Index(k.name), k.ascending});
  }
  SortState* ss = query_->Own<SortState>(types_, std::move(sort_keys),
                                         query_->num_worker_slots(), limit);
  // "in the case of top-k queries, each thread directly maintains a heap
  // of k tuples" — small limits bypass the full sort.
  constexpr int64_t kTopKThreshold = 8192;
  if (limit >= 1 && limit <= kTopKThreshold) {
    TopKSink* sink = query_->Own<TopKSink>(ss, limit);
    CloseInto(sink, "topk");
    query_->SetResultProvider([sink] { return sink->ToResult(); });
    return;
  }
  RunMaterializeSink* sink = query_->Own<RunMaterializeSink>(ss->runs());
  int mat = CloseInto(sink, "sort-materialize");
  int merge_parts = query_->engine()->num_workers();
  int local = query_->AddJob(
      std::make_unique<LocalSortRunsJob>(
          query_->context(), "local-sort", ss->runs(),
          query_->engine()->queue_options(),
          [ss, merge_parts] { ss->PlanMerge(merge_parts); }),
      {mat});
  query_->AddJob(
      std::make_unique<MergeJob>(query_->context(), "merge", ss,
                                 query_->engine()->queue_options()),
      {local});
  query_->SetResultProvider([ss] { return ss->ToResult(); });
}

void PlanBuilder::CollectResult() {
  ResultSink* sink =
      query_->Own<ResultSink>(types_, query_->num_worker_slots());
  CloseInto(sink, "collect");
  query_->SetResultProvider([sink] { return sink->TakeResult(); });
}

}  // namespace morsel
