#include "engine/query.h"

#include "engine/lowering.h"

namespace morsel {

Query::Query(Engine* engine, int id, double priority)
    : engine_(engine),
      context_(id, priority),
      qep_(&context_, engine->dispatcher(),
           engine->options().serialize_roots) {
  context_.set_num_worker_slots(engine->pool()->num_worker_slots());
}

Query::~Query() {
  // A still-running query must not outlive its operator state: cancel and
  // drain before tearing down. The grace period for workers still holding
  // job pointers runs in ~QepObject, right before the jobs are freed.
  if (started_ && !context_.done()) {
    Cancel();
    Wait();
  }
}

void Query::SetPlan(const LogicalPlan& plan) {
  MORSEL_CHECK_MSG(!started_, "SetPlan after Start");
  MORSEL_CHECK_MSG(!plan_.valid(), "query already has a plan");
  MORSEL_CHECK_MSG(plan.valid(), "SetPlan requires a built LogicalPlan");
  plan_ = plan;
  // Worst-case splice reservation for staged lowering: every remaining
  // node past a deferred join lowers at runtime, and a node produces at
  // most 5 jobs (merge join: 2 materialize + 2 sort + a nested decision
  // placeholder). Over-reserving costs pointer slots only.
  qep_.ReserveSplice(5 * plan_.num_nodes() + 8);
  Lowering* lowering = Own<Lowering>(this, plan_.root());
  lowering->Run();
}

void Query::Start() {
  MORSEL_CHECK_MSG(!started_, "query already started");
  MORSEL_CHECK_MSG(plan_.valid(), "Start without a plan");
  started_ = true;
  qep_.Start(engine_->pool()->external_context());
}

void Query::Wait() { context_.Wait(); }

ResultSet Query::Execute() {
  Start();
  Wait();
  return TakeResult();
}

ResultSet Query::TakeResult() {
  MORSEL_CHECK_MSG(context_.error().empty(), context_.error().c_str());
  MORSEL_CHECK_MSG(result_fn_ != nullptr,
                   "plan has no terminal (OrderBy/CollectResult)");
  return result_fn_();
}

void Query::Cancel() {
  engine_->dispatcher()->CancelQuery(&context_,
                                     engine_->pool()->external_context());
}

int Query::AddJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps) {
  return qep_.AddPipeline(std::move(job), std::move(deps));
}

int Query::SpliceJob(std::unique_ptr<PipelineJob> job,
                     std::vector<int> deps, int gate) {
  return qep_.SplicePipeline(std::move(job), std::move(deps), gate);
}

}  // namespace morsel
