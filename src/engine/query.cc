#include "engine/query.h"

#include <new>

#include "engine/lowering.h"

namespace morsel {

Query::Query(Engine* engine, int id, double priority)
    : engine_(engine),
      context_(id, priority),
      qep_(&context_, engine->dispatcher(),
           engine->options().serialize_roots) {
  context_.set_num_worker_slots(engine->pool()->num_worker_slots());
  const EngineOptions& opts = engine->options();
  context_.set_memory_budget(opts.memory_budget_bytes);
  context_.set_interrupt_checkpoints(opts.interrupt_checkpoints);
  if (opts.fault_injection.enabled) {
    context_.set_fault_injector(
        std::make_unique<FaultInjector>(opts.fault_injection));
  }
}

Query::~Query() {
  // A still-running query must not outlive its operator state: cancel and
  // drain before tearing down. The grace period for workers still holding
  // job pointers runs in ~QepObject, right before the jobs are freed.
  if (started_ && !context_.done()) {
    Cancel();
    Wait();
  }
}

void Query::SetPlan(const LogicalPlan& plan) {
  MORSEL_CHECK_MSG(!started_, "SetPlan after Start");
  MORSEL_CHECK_MSG(!plan_.valid(), "query already has a plan");
  MORSEL_CHECK_MSG(plan.valid(), "SetPlan requires a built LogicalPlan");
  plan_ = plan;
  // Worst-case splice reservation for staged lowering: every remaining
  // node past a deferred join lowers at runtime, and a node produces at
  // most 5 jobs (merge join: 2 materialize + 2 sort + a nested decision
  // placeholder). Over-reserving costs pointer slots only.
  qep_.ReserveSplice(5 * plan_.num_nodes() + 8);
  Lowering* lowering = Own<Lowering>(this, plan_.root());
  // Lowering allocates operator state (per-worker row buffers, arenas),
  // so it runs governed like execution; a budget breach or injected
  // allocation fault here errors the query instead of crashing, and
  // Start() then drains to a status-carrying empty result.
  ScopedAllocationGovernor governor(&context_.memory_tracker(),
                                    context_.fault_injector());
  try {
    lowering->Run();
  } catch (const QueryAbort& e) {
    context_.SetError(e.status());
  } catch (const std::bad_alloc&) {
    context_.SetError(QueryStatus::MemoryExceeded("out of memory"));
  } catch (const std::exception& e) {
    context_.SetError(QueryStatus::Internal(
        std::string("plan lowering failed: ") + e.what()));
  }
}

void Query::Start() {
  MORSEL_CHECK_MSG(!started_, "query already started");
  MORSEL_CHECK_MSG(plan_.valid(), "Start without a plan");
  started_ = true;
  // A query that already errored during lowering has a partial QEP;
  // don't submit it — resolve to done so Wait/Execute return the status.
  if (context_.has_error()) {
    context_.MarkDone();
    return;
  }
  if (engine_->options().deadline_ms > 0 && !context_.has_deadline()) {
    context_.SetDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(engine_->options().deadline_ms));
  }
  qep_.Start(engine_->pool()->external_context());
}

void Query::Wait() { context_.Wait(); }

ResultSet Query::Execute() {
  Start();
  Wait();
  return TakeResult();
}

ResultSet Query::TakeResult() {
  QueryStatus st = context_.status();
  if (!st.ok()) {
    // Failed execution: sinks were never finalized, so there is no
    // result to take — surface the structured status instead.
    ResultSet r;
    r.set_status(std::move(st));
    return r;
  }
  // Single-shot: the provider moves the sink's buffer out, so a second
  // taker — possible once concurrent waiters exist (the server's FETCH
  // path races a session-teardown drain) — must not observe a silently
  // empty moved-from result, and two concurrent takers must not race on
  // the move itself. First exchange wins; everyone else gets a
  // structured error.
  if (result_taken_.exchange(true, std::memory_order_acq_rel)) {
    ResultSet r;
    r.set_status(QueryStatus::Internal("result already consumed"));
    return r;
  }
  MORSEL_CHECK_MSG(result_fn_ != nullptr,
                   "plan has no terminal (OrderBy/CollectResult)");
  return result_fn_();
}

std::string Query::ExplainPlan() const {
  std::string out = qep_.Describe();
  int64_t peak = context_.memory_tracker().peak();
  if (peak > 0) {
    out += "[peak-memory: " + std::to_string(peak) + " bytes";
    if (context_.memory_tracker().budget() > 0) {
      out += " / budget " +
             std::to_string(context_.memory_tracker().budget());
    }
    out += "]\n";
  }
  return out;
}

void Query::Cancel() {
  engine_->dispatcher()->CancelQuery(&context_,
                                     engine_->pool()->external_context());
}

int Query::AddJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps) {
  return qep_.AddPipeline(std::move(job), std::move(deps));
}

int Query::SpliceJob(std::unique_ptr<PipelineJob> job,
                     std::vector<int> deps, int gate) {
  return qep_.SplicePipeline(std::move(job), std::move(deps), gate);
}

}  // namespace morsel
