#include "engine/lowering.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "engine/engine.h"
#include "engine/query.h"
#include "exec/aggregation.h"
#include "exec/exchange.h"
#include "exec/fused.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/operators.h"
#include "exec/result.h"
#include "exec/run_set.h"
#include "exec/scan.h"
#include "exec/sort.h"

namespace morsel {

namespace {

// Planner statistics (heuristic, never affect semantics).
constexpr double kFilterSelectivity = 0.33;

// Adaptive-choice thresholds (DESIGN §8): tiny inputs and small
// dimension builds stay hash; near-sorted inputs of comparable
// cardinality route to merge.
constexpr double kMinRowsForMerge = 4096.0;
constexpr double kMinBuildProbeRatio = 0.25;
constexpr double kSortednessBar = 0.90;

// Stat decay through a hash-probe output (ROADMAP item): the
// AMAC-batched probe can locally reorder matches within a chunk, so
// sortedness observed on the probe input arrives slightly degraded
// downstream — deep join trees stop claiming perfect order.
constexpr double kProbeOrderDecay = 0.95;

std::string FormatRows(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

std::string FormatFrac(double v) {
  if (v < 0.0) return "?";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

const char* StrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kHash:
      return "hash";
    case JoinStrategy::kMerge:
      return "merge";
    case JoinStrategy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

}  // namespace

int Lowering::OpenPipe::Index(const std::string& name) const {
  return IndexOfName(names, name);
}

Lowering::Lowering(Query* query, const LogicalNode* root)
    : query_(query), engine_(query->engine()), root_(root) {}

std::vector<const LogicalNode*> Lowering::ChainOf(const LogicalNode* tail) {
  std::vector<const LogicalNode*> chain;
  for (const LogicalNode* n = tail; n != nullptr; n = n->input.get()) {
    chain.push_back(n);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

Lowering::OpenPipe Lowering::StartChain(const LogicalNode* scan) {
  if (scan->kind == LogicalNode::Kind::kExchangeRecv) {
    // Distributed receive stage (DESIGN §14): the channel's buffered
    // rows are this chain's storage area. Cardinality is exact (the
    // coordinator seeded it from the post-send counts); no SARG scan
    // source, so zone-map registration stays off this chain.
    OpenPipe pipe;
    pipe.source = std::make_unique<ExchangeRecvSource>(
        scan->exchange.get(), scan->exchange_shard);
    pipe.names = scan->names;
    pipe.types = scan->types;
    pipe.est_rows = scan->scan_rows;
    pipe.sorted_frac = scan->scan_sorted_frac;
    return pipe;
  }
  MORSEL_CHECK(scan->kind == LogicalNode::Kind::kScan);
  OpenPipe pipe;
  auto source =
      std::make_unique<TableScanSource>(scan->table, scan->column_ids);
  pipe.scan_source = source.get();
  pipe.source = std::move(source);
  pipe.names = scan->names;
  pipe.types = scan->types;
  pipe.est_rows = scan->scan_rows;
  pipe.sorted_frac = scan->scan_sorted_frac;
  // Statistics window for composite-key sortedness probes: valid until
  // the first scope reshape.
  pipe.stats_table = scan->table;
  pipe.stats_cols = scan->column_ids;
  return pipe;
}

void Lowering::Run() {
  std::vector<const LogicalNode*> chain = ChainOf(root_);
  OpenPipe pipe = StartChain(chain.front());
  (void)LowerNodes(chain, 1, std::move(pipe),
                   engine_->options().runtime_feedback);
}

Lowering::OpenPipe Lowering::LowerSubtree(const LogicalNode* tail) {
  std::vector<const LogicalNode*> chain = ChainOf(tail);
  OpenPipe pipe = StartChain(chain.front());
  std::optional<OpenPipe> out =
      LowerNodes(chain, 1, std::move(pipe), /*allow_defer=*/false);
  MORSEL_CHECK(out.has_value());
  return std::move(*out);
}

std::optional<Lowering::OpenPipe> Lowering::LowerNodes(
    const std::vector<const LogicalNode*>& chain, size_t start,
    OpenPipe pipe, bool allow_defer) {
  for (size_t i = start; i < chain.size(); ++i) {
    const LogicalNode* n = chain[i];
    switch (n->kind) {
      case LogicalNode::Kind::kScan:
        MORSEL_CHECK_MSG(false, "scan can only root a chain");
        break;
      case LogicalNode::Kind::kFilter:
        LowerFilter(n, pipe);
        break;
      case LogicalNode::Kind::kProject:
        LowerProject(n, pipe);
        break;
      case LogicalNode::Kind::kGroupBy:
        pipe = LowerGroupBy(n, std::move(pipe));
        break;
      case LogicalNode::Kind::kJoin: {
        OpenPipe build = LowerSubtree(n->build.get());
        JoinStrategy s = n->strategy.has_value()
                             ? *n->strategy
                             : engine_->options().join_strategy;
        if (s == JoinStrategy::kAdaptive && !n->probe_keys.empty() &&
            allow_defer &&
            (FeederPending(pipe) || FeederPending(build))) {
          // Staged lowering: the inputs end in pipeline breakers that
          // have not produced their cardinalities yet. Park both open
          // pipes (and the rest of the spine) behind a placeholder job
          // gated on those breakers; its Finalize re-enters here with
          // the actual row counts and splices the chosen pipelines
          // into the running QEP.
          std::vector<int> deps = pipe.deps;
          for (int d : build.deps) {
            if (std::find(deps.begin(), deps.end(), d) == deps.end()) {
              deps.push_back(d);
            }
          }
          auto dj = std::make_unique<AdaptiveDecisionJob>(
              query_->context(), "adaptive-join-decide", this,
              engine_->queue_options(), chain, i, std::move(pipe),
              std::move(build));
          EmitJob(std::move(dj), std::move(deps));
          return std::nullopt;
        }
        pipe = ResolveJoin(n, s, std::move(pipe), std::move(build),
                           /*decision=*/nullptr);
        break;
      }
      case LogicalNode::Kind::kOrderBy:
        LowerOrderBy(n, std::move(pipe));
        return OpenPipe{};
      case LogicalNode::Kind::kCollect:
        LowerCollect(n, std::move(pipe));
        return OpenPipe{};
      case LogicalNode::Kind::kExchangeSend:
        LowerExchangeSend(n, std::move(pipe));
        return OpenPipe{};
      case LogicalNode::Kind::kExchangeRecv:
        MORSEL_CHECK_MSG(false, "exchange recv can only root a chain");
        break;
    }
  }
  return pipe;
}

void Lowering::Resume(AdaptiveDecisionJob* dj) {
  // All emits below splice into the running QEP, gated on the decision
  // job itself: it only resolves after this Finalize returns, so the
  // spliced pipelines are released in dependency order right after.
  splice_gate_ = dj->pipeline_id;
  const LogicalNode* n = dj->chain_[dj->join_index_];
  OpenPipe pipe =
      ResolveJoin(n, JoinStrategy::kAdaptive, std::move(dj->probe_),
                  std::move(dj->build_), dj);
  (void)LowerNodes(dj->chain_, dj->join_index_ + 1, std::move(pipe),
                   /*allow_defer=*/true);
  splice_gate_ = -1;
}

bool Lowering::FeederPending(const OpenPipe& pipe) const {
  return pipe.feeder_job >= 0 &&
         !query_->job(pipe.feeder_job)
              ->completed.load(std::memory_order_acquire);
}

double Lowering::SideRows(const OpenPipe& pipe, bool* used_feedback) const {
  *used_feedback = false;
  if (pipe.feeder_job >= 0) {
    PipelineJob* feeder = query_->job(pipe.feeder_job);
    if (feeder->completed.load(std::memory_order_acquire)) {
      int64_t rows = feeder->rows_produced();
      if (rows >= 0) {
        *used_feedback = true;
        return static_cast<double>(rows) * pipe.feeder_mult;
      }
    }
  }
  return pipe.est_rows;
}

double Lowering::SideSorted(const OpenPipe& pipe,
                            const std::vector<std::string>& keys) const {
  const double lead = pipe.sorted_frac[pipe.Index(keys[0])];
  if (keys.size() < 2 || pipe.stats_table == nullptr) return lead;
  // Composite probe: data clustered on a leading key can look fully
  // unsorted on every single column while being near-sorted on the key
  // prefix — exactly the inputs where the multi-key merge join wins.
  std::vector<int> cols;
  for (const std::string& k : keys) {
    const int idx = pipe.Index(k);
    if (idx >= static_cast<int>(pipe.stats_cols.size())) return lead;
    cols.push_back(pipe.stats_cols[idx]);
  }
  return pipe.stats_table->ColumnSortedFraction(cols);
}

double Lowering::ApplyObservedOrder(OpenPipe& pipe) const {
  if (pipe.feeder_job < 0 || pipe.order_feeder_cols.empty()) return -1.0;
  PipelineJob* feeder = query_->job(pipe.feeder_job);
  if (!feeder->completed.load(std::memory_order_acquire)) return -1.0;
  const double obs = feeder->observed_sorted();
  if (obs < 0.0) return -1.0;
  // The breaker watched the data flow through: its observation
  // supersedes whatever the plan-time sample (or the lowering's
  // propagation rule) claimed for these columns.
  for (const std::string& c : pipe.order_feeder_cols) {
    pipe.sorted_frac[pipe.Index(c)] = obs;
  }
  return obs;
}

JoinStrategy Lowering::Choose(double probe_rows, double build_rows,
                              double probe_sorted, double build_sorted) {
  // Tiny inputs: the merge join's two extra materialize+sort pipelines
  // cost more than any algorithmic edge — hash unconditionally.
  if (probe_rows < kMinRowsForMerge || build_rows < kMinRowsForMerge) {
    return JoinStrategy::kHash;
  }
  // A small dimension build stays hash even when sorted: probing a
  // cache-resident table beats materializing the whole probe side. The
  // merge join's win region is a build side of comparable cardinality
  // (BENCH_micro_merge_join presorted-bigbuild).
  if (build_rows < kMinBuildProbeRatio * probe_rows) {
    return JoinStrategy::kHash;
  }
  // Sortedness probe on the leading key column of both sides: near-
  // sorted inputs make the merge join's local sorts degenerate to
  // detection scans; on everything else the hash join leads by
  // multiples (BENCH_micro_merge_join).
  if (probe_sorted >= kSortednessBar && build_sorted >= kSortednessBar) {
    return JoinStrategy::kMerge;
  }
  return JoinStrategy::kHash;
}

Lowering::OpenPipe Lowering::ResolveJoin(const LogicalNode* n,
                                         JoinStrategy s, OpenPipe probe,
                                         OpenPipe build,
                                         AdaptiveDecisionJob* decision) {
  std::string annotation;
  if (s == JoinStrategy::kAdaptive) {
    if (n->probe_keys.empty()) {
      s = JoinStrategy::kHash;
      annotation = "[adaptive->hash: no equi-keys]";
    } else {
      bool probe_fb = false;
      bool build_fb = false;
      const double probe_rows = SideRows(probe, &probe_fb);
      const double build_rows = SideRows(build, &build_fb);
      // Runtime order feedback first (it refreshes sorted_frac), then
      // the composite-prefix probe for multi-key joins.
      const double probe_obs = ApplyObservedOrder(probe);
      const double build_obs = ApplyObservedOrder(build);
      const double probe_sorted = SideSorted(probe, n->probe_keys);
      const double build_sorted = SideSorted(build, n->build_keys);
      // Kinds the merge join cannot run always resolve to hash; fold
      // that into the choice so the annotation never claims a strategy
      // the lowering below would refuse.
      const bool merge_ok = n->join_kind != JoinKind::kRightOuterMark;
      s = Choose(probe_rows, build_rows, probe_sorted, build_sorted);
      if (!merge_ok) s = JoinStrategy::kHash;
      std::string tag;
      if (probe_fb || build_fb) {
        JoinStrategy plan_s = Choose(probe.est_rows, build.est_rows,
                                     probe_sorted, build_sorted);
        if (!merge_ok) plan_s = JoinStrategy::kHash;
        tag = plan_s == s ? "runtime-confirmed"
                          : std::string("runtime-revised plan-time=") +
                                StrategyName(plan_s);
      } else {
        tag = "plan-time";
      }
      annotation = "[adaptive->" + std::string(StrategyName(s)) +
                   ": build=" + FormatRows(build_rows) +
                   " probe=" + FormatRows(probe_rows) +
                   " sorted=" + FormatFrac(probe_sorted) + "/" +
                   FormatFrac(build_sorted);
      if (probe_obs >= 0.0 || build_obs >= 0.0) {
        annotation += " observed-order=" + FormatFrac(probe_obs) + "/" +
                      FormatFrac(build_obs);
      }
      annotation += ", " + tag + "]";
    }
  }
  if (decision != nullptr && !annotation.empty()) {
    // Deferred joins report the decision on their placeholder's
    // ExplainPlan line; eager ones on the build-side close job.
    decision->set_info(annotation);
    annotation.clear();
  }
  return LowerResolvedJoin(n, s, std::move(probe), std::move(build),
                           std::move(annotation));
}

Lowering::JoinBuildPlan Lowering::PrepareJoinBuild(const LogicalNode* n,
                                                   OpenPipe& probe,
                                                   OpenPipe& build) {
  JoinBuildPlan plan;
  // Both pipes grow join operators below: close out any filter runs
  // still accumulating.
  FlushPendingFilter(probe);
  FlushPendingFilter(build);
  // Re-order the build pipe's output to [keys..., payload...].
  std::vector<ExprPtr> list;
  std::vector<std::string> bnames;
  std::vector<LogicalType> btypes;
  std::vector<double> bfracs;
  for (const std::string& k : n->build_keys) {
    int idx = build.Index(k);
    list.push_back(ColRef(idx, build.types[idx]));
    plan.build_types.push_back(build.types[idx]);
    bnames.push_back(k);
    btypes.push_back(build.types[idx]);
    bfracs.push_back(build.sorted_frac[idx]);
  }
  for (const std::string& p : n->build_payload) {
    int idx = build.Index(p);
    list.push_back(ColRef(idx, build.types[idx]));
    plan.build_types.push_back(build.types[idx]);
    plan.payload_types.push_back(build.types[idx]);
    bnames.push_back(p);
    btypes.push_back(build.types[idx]);
    bfracs.push_back(build.sorted_frac[idx]);
  }
  build.ops.push_back(std::make_unique<MapOp>(std::move(list)));
  build.scan_source = nullptr;
  build.stats_table = nullptr;
  build.names = std::move(bnames);
  build.types = std::move(btypes);
  build.sorted_frac = std::move(bfracs);

  if (n->residual != nullptr) {
    // Residual scope: probe columns followed by the emitted build
    // payload (matching the combined chunk both probe paths produce).
    std::vector<std::string> rnames = probe.names;
    std::vector<LogicalType> rtypes = probe.types;
    for (size_t p = 0; p < n->build_payload.size(); ++p) {
      rnames.push_back(n->build_payload[p]);
      rtypes.push_back(plan.payload_types[p]);
    }
    plan.residual = FoldConstants(n->residual(
        ColScope(std::move(rnames), std::move(rtypes))));
  }
  return plan;
}

Lowering::OpenPipe Lowering::LowerResolvedJoin(const LogicalNode* n,
                                               JoinStrategy s,
                                               OpenPipe probe,
                                               OpenPipe build,
                                               std::string annotation) {
  MORSEL_CHECK(s != JoinStrategy::kAdaptive);
  const int num_keys = static_cast<int>(n->build_keys.size());
  const JoinKind kind = n->join_kind;
  JoinBuildPlan plan = PrepareJoinBuild(n, probe, build);

  if (s == JoinStrategy::kMerge && kind != JoinKind::kRightOuterMark) {
    // --- MPSM sort-merge join (breaks both pipes) ----------------------
    std::vector<int> probe_cols;
    for (const std::string& k : n->probe_keys) {
      probe_cols.push_back(probe.Index(k));
    }
    // Oversubscribe the output partitioning (factor x workers): under
    // separator skew a heavy partition is one morsel, so finer
    // partitions keep the tail stealable.
    const int num_parts =
        engine_->num_workers() *
        std::max(1, engine_->options().merge_partition_factor);
    MergeJoinState* js = query_->Own<MergeJoinState>(
        probe.types, std::move(probe_cols), plan.build_types, num_keys,
        kind, query_->num_worker_slots(), num_parts);
    js->set_residual(std::move(plan.residual));
    // Materialization mode (DESIGN §13): near-sorted inputs keep the
    // separator path — their local sorts degenerate to detection scans
    // precisely because materialization preserved the global order, and
    // hash-scattering would destroy that. Everything else (including
    // unknown sortedness, -1) radix-scatters on the join keys so each
    // partition sorts only its 1/P share and planning needs no samples.
    const double ps = probe.sorted_frac[probe.Index(n->probe_keys[0])];
    const double bs = build.sorted_frac[0];  // keys lead post-PrepareJoinBuild
    const bool radix_mat =
        engine_->options().radix_merge_materialize &&
        !(ps >= kSortednessBar && bs >= kSortednessBar);
    if (radix_mat) js->EnableRadixMaterialize();

    RunMaterializeSink* build_sink =
        query_->Own<RunMaterializeSink>(js->right());
    int build_mat = ClosePipe(build, build_sink, "merge-build-materialize");
    if (!annotation.empty()) AppendInfo(build_mat, annotation);
    int build_sort = EmitJob(
        std::make_unique<LocalSortRunsJob>(
            query_->context(), "merge-build-sort", js->right(),
            engine_->queue_options()),
        {build_mat});

    RunMaterializeSink* probe_sink =
        query_->Own<RunMaterializeSink>(js->left());
    int probe_mat = ClosePipe(probe, probe_sink, "merge-probe-materialize");
    if (radix_mat) {
      // ExplainPlan: the mode decision, on the probe materialize line.
      AppendInfo(probe_mat,
                 "[radix-materialize " + std::to_string(num_parts) +
                     " parts]");
    }
    int probe_sort = EmitJob(
        std::make_unique<LocalSortRunsJob>(
            query_->context(), "merge-probe-sort", js->left(),
            engine_->queue_options()),
        {probe_mat});

    // Continue from the partition-merge-join source; partition planning
    // happens in its MakeRanges once both sorts completed.
    OpenPipe out;
    out.source = std::make_unique<MergeJoinSource>(js);
    out.deps = {probe_sort, build_sort};
    out.name_prefix = "partition-merge-join+";
    out.names = std::move(probe.names);
    out.types = std::move(probe.types);
    out.est_rows = probe.est_rows;
    // Each partition-morsel emits in key order, so downstream runs see
    // few ascending key segments; every other column's order is
    // destroyed by the sort.
    out.sorted_frac.assign(out.names.size(), -1.0);
    for (const std::string& k : n->probe_keys) {
      out.sorted_frac[out.Index(k)] = 1.0;
    }
    // Feedback: the probe side's materialized row count is the best
    // available proxy for this join's output cardinality (the planner's
    // estimate makes the same assumption). The sort job also observed
    // how much of the data arrived in key order — a downstream
    // deferred adaptive join refreshes the key columns' sortedness
    // from that observation instead of trusting the 1.0 claim above
    // (radix-scattered materialization interleaves partition runs).
    out.feeder_job = probe_sort;
    out.feeder_mult = 1.0;
    out.order_feeder_cols = n->probe_keys;
    if (kind != JoinKind::kSemi && kind != JoinKind::kAnti) {
      for (size_t p = 0; p < n->build_payload.size(); ++p) {
        out.names.push_back(n->build_payload[p]);
        out.types.push_back(plan.payload_types[p]);
        out.sorted_frac.push_back(-1.0);
      }
    }
    return out;
  }

  // --- hash join (probe side stays pipelined) --------------------------
  JoinState* js = query_->Own<JoinState>(plan.build_types, num_keys, kind,
                                         query_->num_worker_slots());
  HashBuildSink* build_sink = query_->Own<HashBuildSink>(js);
  int build_job = ClosePipe(build, build_sink, "join-build");
  if (!annotation.empty()) AppendInfo(build_job, annotation);
  int insert_job = EmitJob(
      std::make_unique<HashInsertJob>(query_->context(), "join-insert", js,
                                      engine_->queue_options()),
      {build_job});

  std::vector<int> probe_cols;
  for (const std::string& k : n->probe_keys) {
    probe_cols.push_back(probe.Index(k));
  }
  std::vector<int> out_fields;
  for (size_t p = 0; p < n->build_payload.size(); ++p) {
    out_fields.push_back(num_keys + static_cast<int>(p));
  }
  probe.ops.push_back(std::make_unique<HashProbeOp>(
      js, std::move(probe_cols), std::move(out_fields),
      std::move(plan.residual)));
  probe.scan_source = nullptr;  // scope widened past the scan columns
  probe.stats_table = nullptr;
  probe.deps.push_back(insert_job);
  // Stat decay: the batched probe preserves probe order only up to
  // within-chunk reordering, so downstream sortedness claims fade with
  // every hash probe they cross.
  for (double& f : probe.sorted_frac) {
    if (f > 0.0) f *= kProbeOrderDecay;
  }
  // Semi/anti emit probe columns only; other kinds append the payload.
  if (kind != JoinKind::kSemi && kind != JoinKind::kAnti) {
    for (size_t p = 0; p < n->build_payload.size(); ++p) {
      probe.names.push_back(n->build_payload[p]);
      probe.types.push_back(plan.payload_types[p]);
      probe.sorted_frac.push_back(-1.0);
    }
  }
  return probe;
}

void Lowering::LowerFilter(const LogicalNode* n, OpenPipe& pipe) {
  // Split the predicate into its top-level conjuncts so FilterOp can
  // short-circuit, reorder and zone-map-elide them independently, and
  // fold column-free subtrees to literals while we are at it.
  std::vector<ExprPtr> conjuncts = SplitConjuncts(*n->predicate);
  for (ExprPtr& raw : conjuncts) {
    ExprPtr c = FoldConstants(std::move(raw));
    int64_t iv;
    double dv;
    bool is_int;
    if (c->AsConstNumeric(&iv, &dv, &is_int) &&
        (is_int ? iv != 0 : dv != 0)) {
      continue;  // constant-true conjunct: nothing to evaluate
    }
    int slot = -1;
    if (engine_->options().zone_maps && pipe.scan_source != nullptr) {
      Sarg sarg;
      if (c->ExtractSarg(&sarg)) {
        slot = RegisterSarg(sarg, pipe);
      }
    }
    pipe.pending_slots.push_back(slot);
    pipe.pending_conjuncts.push_back(std::move(c));
  }
  // The first contributing node's plan-owned slot persists the learned
  // order; a fused merge re-uses it for the merged conjunct list (the
  // conjunct count keys validation, so fused and unfused executions of
  // the same plan never adopt each other's words by accident).
  if (pipe.pending_persist == nullptr &&
      n->learned_conjunct_order != nullptr) {
    pipe.pending_persist = n->learned_conjunct_order.get();
  }
  // Fused mode keeps accumulating: adjacent kFilter nodes merge into
  // one FilterOp whose adaptive reordering ranks conjuncts across the
  // original filter boundaries. Unfused mode closes each node out
  // immediately (the differential ablation arm, op-per-node shape).
  if (!engine_->options().fused_pipelines) FlushPendingFilter(pipe);
  // Generic selectivity guess; filtering preserves row order, so the
  // per-column sortedness statistics stand.
  pipe.est_rows *= kFilterSelectivity;
  pipe.feeder_mult *= kFilterSelectivity;
}

void Lowering::FlushPendingFilter(OpenPipe& pipe) {
  if (pipe.pending_conjuncts.empty()) {
    pipe.pending_persist = nullptr;
    return;
  }
  auto filter = std::make_unique<FilterOp>(
      std::move(pipe.pending_conjuncts), std::move(pipe.pending_slots),
      pipe.pending_persist);
  if (filter->started_warm()) {
    // ExplainPlan: this execution adopted a conjunct order a previous
    // execution of the same plan learned (PreparedQuery warm start).
    if (!pipe.pending_info.empty()) pipe.pending_info += ' ';
    pipe.pending_info += "[warm-conjunct-order]";
  }
  pipe.ops.push_back(std::move(filter));
  pipe.pending_conjuncts.clear();
  pipe.pending_slots.clear();
  pipe.pending_persist = nullptr;
}

int Lowering::RegisterSarg(const Sarg& sarg, OpenPipe& pipe) {
  // Match the literal representation to the storage type: integer
  // bounds for integer columns, an exactly-representable double for
  // double columns. Anything else stays a per-row conjunct — zone-map
  // verdicts must never lose precision.
  ScanSarg out;
  out.chunk_col = sarg.col;
  out.op = sarg.op;
  switch (pipe.types[sarg.col]) {
    case LogicalType::kInt32:
    case LogicalType::kInt64:
      if (!sarg.lit_is_int) return -1;
      out.i64 = sarg.i64;
      break;
    case LogicalType::kDouble:
      if (sarg.lit_is_int) {
        constexpr int64_t kExactDouble = int64_t{1} << 53;
        if (sarg.i64 > kExactDouble || sarg.i64 < -kExactDouble) return -1;
        out.f64 = static_cast<double>(sarg.i64);
      } else {
        out.f64 = sarg.f64;
      }
      break;
    case LogicalType::kString:
      return -1;
  }
  return pipe.scan_source->AddSarg(out);
}

void Lowering::LowerProject(const LogicalNode* n, OpenPipe& pipe) {
  FlushPendingFilter(pipe);
  std::vector<ExprPtr> list;
  std::vector<double> fracs;
  for (const ExprPtr& e : n->exprs) {
    // Bare column references carry their sortedness stat through the
    // projection; computed columns are unknown.
    int src = e->AsColumnIndex();
    fracs.push_back(src >= 0 ? pipe.sorted_frac[src] : -1.0);
    list.push_back(FoldConstants(e->Clone()));
  }
  pipe.ops.push_back(std::make_unique<MapOp>(std::move(list)));
  pipe.scan_source = nullptr;  // scope reshaped: no more SARG windows
  pipe.stats_table = nullptr;
  pipe.names = n->names;
  pipe.types = n->types;
  pipe.sorted_frac = std::move(fracs);
}

Lowering::OpenPipe Lowering::LowerGroupBy(const LogicalNode* n,
                                          OpenPipe pipe) {
  FlushPendingFilter(pipe);
  // Phase-1 input chunk: [keys..., one input column per aggregate].
  std::vector<ExprPtr> map_exprs;
  std::vector<LogicalType> key_types;
  for (const std::string& k : n->group_keys) {
    int idx = pipe.Index(k);
    map_exprs.push_back(ColRef(idx, pipe.types[idx]));
    key_types.push_back(pipe.types[idx]);
  }
  std::vector<AggSpec> specs;
  for (size_t j = 0; j < n->aggs.size(); ++j) {
    const AggItem& a = n->aggs[j];
    AggSpec spec;
    spec.func = a.func;
    spec.input_col = static_cast<int>(n->group_keys.size() + j);
    if (a.input == nullptr) {
      MORSEL_CHECK(a.func == AggFunc::kCount);
      spec.input_type = LogicalType::kInt32;
      map_exprs.push_back(ConstI32(0));  // placeholder, never read
    } else {
      spec.input_type = a.input->type();
      map_exprs.push_back(FoldConstants(a.input->Clone()));
    }
    specs.push_back(spec);
  }
  pipe.ops.push_back(std::make_unique<MapOp>(std::move(map_exprs)));
  pipe.scan_source = nullptr;
  pipe.stats_table = nullptr;

  GroupByState* gs = query_->Own<GroupByState>(
      key_types, specs, query_->num_worker_slots());
  AggPhase1Sink::Options aopts;
  aopts.adaptive = engine_->options().adaptive_agg;
  aopts.switch_ratio = engine_->options().agg_radix_switch_ratio;
  AggPhase1Sink* sink = query_->Own<AggPhase1Sink>(gs, aopts);
  int phase1 = ClosePipe(pipe, sink, "agg-phase1");

  // Continue from the aggregation output.
  OpenPipe out;
  out.source = std::make_unique<AggPartitionSource>(gs);
  out.deps = {phase1};
  out.names = n->names;
  out.types = n->types;
  // Group count guess; hash-partitioned output has no usable order.
  out.est_rows = std::max(1.0, std::sqrt(pipe.est_rows));
  out.sorted_frac.assign(out.names.size(), -1.0);
  // Feedback: phase 1 reports its (actual-data) group estimate.
  out.feeder_job = phase1;
  out.feeder_mult = 1.0;
  return out;
}

void Lowering::LowerOrderBy(const LogicalNode* n, OpenPipe pipe) {
  std::vector<SortKey> sort_keys;
  for (const OrderItem& k : n->order_keys) {
    sort_keys.push_back(SortKey{pipe.Index(k.name), k.ascending});
  }
  SortState* ss = query_->Own<SortState>(pipe.types, std::move(sort_keys),
                                         query_->num_worker_slots(),
                                         n->limit);
  // "in the case of top-k queries, each thread directly maintains a heap
  // of k tuples" — small limits bypass the full sort.
  constexpr int64_t kTopKThreshold = 8192;
  if (n->limit >= 1 && n->limit <= kTopKThreshold) {
    TopKSink* sink = query_->Own<TopKSink>(ss, n->limit);
    ClosePipe(pipe, sink, "topk");
    query_->SetResultProvider([sink] { return sink->ToResult(); });
    return;
  }
  RunMaterializeSink* sink = query_->Own<RunMaterializeSink>(ss->runs());
  int mat = ClosePipe(pipe, sink, "sort-materialize");
  int merge_parts = engine_->num_workers();
  int local = EmitJob(
      std::make_unique<LocalSortRunsJob>(
          query_->context(), "local-sort", ss->runs(),
          engine_->queue_options(),
          [ss, merge_parts] { ss->PlanMerge(merge_parts); }),
      {mat});
  EmitJob(std::make_unique<MergeJob>(query_->context(), "merge", ss,
                                     engine_->queue_options()),
          {local});
  query_->SetResultProvider([ss] { return ss->ToResult(); });
}

void Lowering::LowerCollect(const LogicalNode* n, OpenPipe pipe) {
  (void)n;
  ResultSink* sink =
      query_->Own<ResultSink>(pipe.types, query_->num_worker_slots());
  ClosePipe(pipe, sink, "collect");
  query_->SetResultProvider([sink] { return sink->TakeResult(); });
}

void Lowering::LowerExchangeSend(const LogicalNode* n, OpenPipe pipe) {
  std::vector<int> key_cols;
  for (const std::string& k : n->exchange_keys) {
    key_cols.push_back(pipe.Index(k));
  }
  ExchangeSendSink* sink = query_->Own<ExchangeSendSink>(
      n->exchange.get(), n->exchange_shard, std::move(key_cols),
      query_->num_worker_slots());
  ClosePipe(pipe, sink, "exchange-send");
  // A send stage produces no local rows; its output lives in the
  // channel. The coordinator reads counts there, not a ResultSet.
  query_->SetResultProvider([] { return ResultSet(); });
}

int Lowering::ClosePipe(OpenPipe& pipe, Sink* sink,
                        const std::string& name) {
  MORSEL_CHECK_MSG(pipe.source != nullptr, "pipeline already closed");
  FlushPendingFilter(pipe);
  const EngineOptions& opts = engine_->options();
  if (opts.fused_pipelines && pipe.ops.size() >= 2) {
    // Fuse the whole intra-pipeline operator run (DESIGN §15): the
    // chain executes chunk-resident through one FusedPipelineOp with a
    // single interrupt checkpoint per pass; per-stage row counters are
    // preserved on the fused op. The sink's stage name joins the label
    // so ExplainPlan reads "[fused: filter+probe+agg-phase1]".
    auto fused = std::make_unique<FusedPipelineOp>(std::move(pipe.ops));
    if (!pipe.pending_info.empty()) pipe.pending_info += ' ';
    pipe.pending_info += "[fused: " + fused->label() + "+" + name + "]";
    pipe.ops.clear();
    pipe.ops.push_back(std::move(fused));
  }
  auto pipeline = std::make_unique<Pipeline>(std::move(pipe.source),
                                             std::move(pipe.ops), sink);
  std::string full_name =
      pipe.name_prefix.empty() ? name : pipe.name_prefix + name;
  pipe.name_prefix.clear();
  auto job = std::make_unique<ExecPipelineJob>(
      query_->context(), std::move(full_name), std::move(pipeline),
      engine_->queue_options(), opts.tagging,
      opts.static_division ? engine_->num_workers() : 0,
      opts.batched_probe, opts.selection_vectors);
  int id = EmitJob(std::move(job), std::move(pipe.deps));
  if (!pipe.pending_info.empty()) {
    // Plan-time annotations for this pipeline ("[warm-conjunct-order]",
    // "[fused: ...]"); runtime info appends after these (pipeline.cc).
    query_->job(id)->set_info(std::move(pipe.pending_info));
    pipe.pending_info.clear();
  }
  pipe.deps.clear();
  pipe.ops.clear();
  pipe.scan_source = nullptr;
  pipe.stats_table = nullptr;
  return id;
}

void Lowering::AppendInfo(int job_id, const std::string& info) {
  PipelineJob* job = query_->job(job_id);
  const std::string& prev = job->info();
  job->set_info(prev.empty() ? info : prev + " " + info);
}

int Lowering::EmitJob(std::unique_ptr<PipelineJob> job,
                      std::vector<int> deps) {
  if (splice_gate_ >= 0) {
    // Runtime mode: gate every spliced pipeline on the decision job
    // being finalized, so nothing runs (or resolves) before the splice
    // completes and release happens in dependency order.
    deps.push_back(splice_gate_);
    return query_->SpliceJob(std::move(job), std::move(deps), splice_gate_);
  }
  return query_->AddJob(std::move(job), std::move(deps));
}

}  // namespace morsel
