#ifndef MORSELDB_ENGINE_ENGINE_H_
#define MORSELDB_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "common/fault_injector.h"
#include "core/dispatcher.h"
#include "core/morsel_queue.h"
#include "core/trace.h"
#include "core/worker_pool.h"
#include "engine/logical_plan.h"
#include "exec/result.h"
#include "numa/mem_stats.h"
#include "numa/topology.h"

namespace morsel {

class Query;
class PreparedQuery;

// What PreparedQuery does when the plan's build-time storage snapshot
// (scan statistics, zone-map extraction inputs, table epochs) predates
// a SealPartition on a scanned table.
enum class PreparedStalePolicy {
  kRelower,  // transparently re-snapshot the scan stats and lower that
  kError,    // abort: the caller must re-Prepare after bulk loads
};

// Engine-wide execution options; the toggles reproduce the engine
// variants of Figure 11 and §5.4:
//  - full-fledged            : defaults
//  - "not NUMA aware"        : numa_aware=false (+ tables loaded with
//                              Placement::kOsDefault)
//  - "non-adaptive"          : static_division=true, tagging=false
//  - Volcano emulation       : static division + NUMA-oblivious + no
//                              stealing ("we set the morsel size to n/t")
struct EngineOptions {
  int num_workers = 0;        // 0 = one per virtual core
  uint64_t morsel_size = 100000;  // §3.3 default
  JoinStrategy join_strategy = JoinStrategy::kHash;
  bool numa_aware = true;     // prefer NUMA-local morsels
  bool steal = true;          // cross-socket work stealing
  bool closest_first = true;  // distance-ordered stealing
  bool tagging = true;        // §4.2 hash-table pointer tags
  bool batched_probe = true;  // staged, prefetch-pipelined join probe;
                              // false = row-at-a-time ablation baseline
  // Selection-vector filter execution (DESIGN.md §10): conjuncts after
  // the first evaluate surviving rows only and column compaction is
  // deferred to the consumer. false = the eager evaluate-everything,
  // compact-per-filter baseline.
  bool selection_vectors = true;
  // Fused chunk-resident pipelines (DESIGN §15): lowering merges
  // adjacent Filter nodes into one multi-conjunct FilterOp (adaptive
  // reordering then ranks conjuncts *across* the original filter
  // boundaries) and wraps every >=2-op operator chain into a single
  // FusedPipelineOp that runs the whole chain over one resident chunk
  // with one interrupt checkpoint per pass. false = the op-by-op push
  // chain (the differential-test ablation arm).
  bool fused_pipelines = true;
  // Per-morsel zone-map consultation on scans: SARGable conjuncts skip
  // morsels their min/max rule out and drop out of fully-accepted
  // morsels. false = scan every morsel wholesale.
  bool zone_maps = true;
  // Staleness handling for prepared plans (Table::epoch mismatch).
  PreparedStalePolicy prepared_stale = PreparedStalePolicy::kRelower;
  // Merge-join output partitions per worker: partitions = factor x
  // workers, so skewed partitions stay stealable instead of turning
  // into one-morsel monoliths. 1 = the coarse one-partition-per-worker
  // ablation baseline.
  int merge_partition_factor = 4;
  // Adaptive phase-1 aggregation (DESIGN §13): each worker starts in
  // thread-local pre-aggregation and switches to radix-partition-then-
  // aggregate when its observed distinct-group fill rate crosses
  // agg_radix_switch_ratio. false = the fixed two-phase baseline (the
  // differential-test ablation arm: workers never leave the local
  // table).
  bool adaptive_agg = true;
  // New-groups-per-consumed-row ratio that flips a worker to radix
  // scatter; <= 0 forces radix mode from the first row (bench arm).
  double agg_radix_switch_ratio = 0.5;
  // Radix-partitioned materialization for *unsorted* merge-join inputs
  // (DESIGN §13): both sides hash-scatter into per-worker partition
  // runs, partition planning needs no sampled separators, and each
  // partition sorts/merges only its 1/P share. Near-sorted inputs keep
  // the separator path (global order makes their local sorts detection
  // scans). false = always sample separators over globally sorted runs.
  bool radix_merge_materialize = true;
  // Staged lowering (DESIGN §9): a kAdaptive join whose inputs end in
  // pipeline breakers defers its hash-vs-merge choice to the pipeline
  // boundary, where the breakers' actual row counts replace the
  // plan-time estimates. false = resolve every kAdaptive join eagerly
  // at lowering time from the heuristic estimates (the pre-feedback
  // behavior; also the differential-test ablation arm).
  bool runtime_feedback = true;
  bool static_division = false;  // morsel size forced to n / workers
  bool serialize_roots = true;   // §3.2: no bushy parallelism
  bool pin_threads = true;
  bool record_trace = false;  // Figure 13 trace events
  // §3.3 contention avoidance: pre-split each socket's ranges into one
  // subrange per core so every thread temporarily owns a local range.
  bool split_ranges_per_core = true;
  // Deterministic §5.4 interference injection: the worker on this core
  // runs `slow_core_factor`x slower per morsel. -1 = disabled.
  int simulate_slow_core = -1;
  double slow_core_factor = 2.0;
  // --- resource governance & fault tolerance (DESIGN §11) --------------
  // Per-query memory budget charged by the query's MemoryTracker at
  // every governed NumaAlloc (arena blocks, row buffers, hash tables,
  // sort runs); 0 = unlimited. A breach aborts the query with
  // StatusCode::kMemoryExceeded.
  int64_t memory_budget_bytes = 0;
  // Wall-clock deadline per query, measured from Start(); 0 = none.
  // Enforced at dispatcher hand-out and at interrupt checkpoints
  // (StatusCode::kDeadlineExceeded). Query::SetDeadline overrides.
  int64_t deadline_ms = 0;
  // Chunk-granularity cancellation/deadline checkpoints inside long
  // jobs (merge-join partition joins, sorts, hash builds): cancellation
  // latency becomes chunk-length instead of morsel-length. false = the
  // morsel-boundary-only baseline (bench ablation).
  bool interrupt_checkpoints = true;
  // Deterministic per-query fault injection for chaos testing
  // (common/fault_injector.h); disabled by default.
  FaultInjectionOptions fault_injection;
};

// Top-level execution environment: the (possibly simulated) NUMA
// topology, the passive dispatcher, the pinned worker pool, traffic
// accounting, and optional tracing. Queries are created against an
// Engine and share its workers — inter-query parallelism falls out of
// the dispatcher's fair-share job selection.
class Engine {
 public:
  explicit Engine(const Topology& topo, const EngineOptions& opts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Topology& topology() const { return topo_; }
  const EngineOptions& options() const { return opts_; }
  Dispatcher* dispatcher() { return dispatcher_.get(); }
  WorkerPool* pool() { return pool_.get(); }
  MemStatsRegistry* stats() { return stats_.get(); }
  TraceRecorder* trace() { return trace_.get(); }
  int num_workers() const { return pool_->num_workers(); }

  // Morsel-queue options derived from the engine options.
  MorselQueue::Options queue_options() const {
    MorselQueue::Options q;
    q.morsel_size = opts_.morsel_size;
    q.numa_aware = opts_.numa_aware;
    q.steal = opts_.steal;
    q.closest_first = opts_.closest_first;
    if (opts_.split_ranges_per_core) {
      q.split_per_socket = topo_.cores_per_socket();
    }
    if (!opts_.steal) {
      // Liveness with stealing disabled: a socket hosting no pool worker
      // can never drain its own morsels, so the queue must know which
      // sockets are covered and hand orphaned NUMA-local morsels to
      // remote workers instead of starving the job.
      q.socket_has_worker = pool_->SocketWorkerMask(topo_.num_sockets());
    }
    return q;
  }

  // Creates a query handle. `priority` weights dispatcher fair share
  // (§3.1); workers move between concurrent queries at morsel
  // boundaries. Give the query a plan with Query::SetPlan.
  std::unique_ptr<Query> CreateQuery(double priority = 1.0);

  // Creates a query and lowers `plan` into it (CreateQuery + SetPlan).
  std::unique_ptr<Query> CreateQuery(const LogicalPlan& plan,
                                     double priority = 1.0);

  // Prepares `plan` for repeated execution against this engine: the
  // north-star heavy-traffic shape — build the plan once, lower and
  // execute it per request (see PreparedQuery).
  PreparedQuery Prepare(LogicalPlan plan);

 private:
  Topology topo_;
  EngineOptions opts_;
  std::unique_ptr<MemStatsRegistry> stats_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<int> next_query_id_{0};
};

// A LogicalPlan bound to an Engine for repeated execution. Each
// MakeQuery()/Execute() lowers the shared immutable plan into a fresh
// Query, so one PreparedQuery serves any number of concurrent
// executions (the plan tree is read-only; lowering clones its
// expressions) — they share the engine's workers like any other
// concurrent queries. The PreparedQuery must not outlive the Engine or
// the scanned Tables; it may outlive every Query it produced.
//
// Staleness: the plan snapshots each scanned table's epoch (and
// statistics) at build time. When a SealPartition has happened since —
// a bulk load changed the data under the frozen stats — MakeQuery
// either transparently re-snapshots the scan statistics and lowers the
// refreshed plan (PreparedStalePolicy::kRelower, cached until the next
// epoch bump) or aborts (kError), per EngineOptions::prepared_stale.
class PreparedQuery {
 public:
  PreparedQuery() = default;
  PreparedQuery(Engine* engine, LogicalPlan plan)
      : engine_(engine),
        plan_(std::move(plan)),
        refresh_(std::make_shared<Refresh>()) {}

  bool valid() const { return engine_ != nullptr && plan_.valid(); }
  const LogicalPlan& plan() const { return plan_; }

  // A fresh lowered (not yet started) execution of the plan.
  // `memory_budget_bytes > 0` installs the per-query budget *before*
  // lowering, so plan-time allocations are governed too — the server's
  // per-session budgets need that ordering, which SetMemoryBudget on
  // the returned Query could not provide.
  std::unique_ptr<Query> MakeQuery(double priority = 1.0,
                                   int64_t memory_budget_bytes = 0) const;
  // One-shot convenience: MakeQuery + Execute. Thread-safe.
  ResultSet Execute(double priority = 1.0) const;

 private:
  // Shared across copies of this PreparedQuery so every handle sees the
  // refreshed snapshot at most once per epoch bump.
  struct Refresh {
    std::mutex mu;
    LogicalPlan plan;  // valid() once a stale execution refreshed it
  };

  Engine* engine_ = nullptr;
  LogicalPlan plan_;
  std::shared_ptr<Refresh> refresh_;
};

}  // namespace morsel

#endif  // MORSELDB_ENGINE_ENGINE_H_
