#ifndef MORSELDB_ENGINE_LOGICAL_PLAN_H_
#define MORSELDB_ENGINE_LOGICAL_PLAN_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/aggregation.h"
#include "exec/expression.h"
#include "exec/hash_join.h"
#include "storage/table.h"

namespace morsel {

class ExchangeChannel;

// Position of `name` in `names`; aborts on an unknown name (malformed
// plan — a query-author bug). Shared by every scope-like name lookup.
int IndexOfName(const std::vector<std::string>& names,
                std::string_view name);

// Equi-join algorithm choice, applied by the physical lowering pass
// either from the engine-wide EngineOptions::join_strategy knob or from
// a per-join override (hash join per §4.1 vs the MPSM-style sort-merge
// join of Albutiu et al., both scheduled morsel-wise). kAdaptive
// resolves per join from input cardinalities and the sampled sortedness
// of the leading key column on each side — at lowering time when both
// inputs are scan-rooted, or (runtime feedback, DESIGN §9) at the
// pipeline boundary once the actual row counts of the inputs' completed
// breaker stages are known.
enum class JoinStrategy {
  kHash,
  kMerge,
  kAdaptive,
};

// Resolves column names to expressions in a given column scope (used
// for residual join predicates whose scope is probe + build columns).
class ColScope {
 public:
  ColScope(std::vector<std::string> names, std::vector<LogicalType> types)
      : names_(std::move(names)), types_(std::move(types)) {}

  int Index(std::string_view name) const;
  LogicalType Type(std::string_view name) const {
    return types_[Index(name)];
  }
  ExprPtr Col(std::string_view name) const {
    int i = Index(name);
    return ColRef(i, types_[i]);
  }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<LogicalType>& types() const { return types_; }

 private:
  std::vector<std::string> names_;
  std::vector<LogicalType> types_;
};

// A named output expression for projections.
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

// Shorthand constructor (NamedExpr is move-only, so projection lists are
// written Project(NE("a", ...), NE("b", ...)) rather than with braces).
inline NamedExpr NE(std::string name, ExprPtr expr) {
  return NamedExpr{std::move(name), std::move(expr)};
}

// One aggregate in a GROUP BY.
struct AggItem {
  AggFunc func;
  ExprPtr input;  // nullptr for COUNT(*)
  std::string out_name;
};

// One ORDER BY key by column name.
struct OrderItem {
  std::string name;
  bool ascending = true;
};

// One node of an immutable logical plan tree. Nodes are built by
// PlanBuilder, shared via shared_ptr (a LogicalPlan copy is two pointer
// copies), and never mutated after Build(): the physical lowering pass
// clones the stored expression trees per lowering, so one plan can be
// lowered into any number of concurrent Query executions.
//
// The residual join predicate is kept as the user's factory callback
// and re-invoked per lowering; it must be a pure function of its
// ColScope argument.
struct LogicalNode {
  enum class Kind {
    kScan,
    kFilter,
    kProject,
    kJoin,
    kGroupBy,
    kOrderBy,       // terminal
    kCollect,       // terminal
    kExchangeSend,  // terminal: route rows into an ExchangeChannel
    kExchangeRecv,  // leaf: morsel source over an ExchangeChannel
  };

  Kind kind;

  // Children: every node except kScan has `input`; kJoin also has
  // `build` (the build-side subtree).
  std::shared_ptr<const LogicalNode> input;
  std::shared_ptr<const LogicalNode> build;

  // Output schema (the scope visible to the parent node).
  std::vector<std::string> names;
  std::vector<LogicalType> types;

  // kScan. Plan-time statistics are sampled once, when the builder
  // creates the node (storage-side cached sortedness probe); a prepared
  // plan keeps using them across executions. `table_epoch` records the
  // table's data version at sampling time so PreparedQuery can detect
  // plans whose snapshot predates a bulk load (PlanIsStale below).
  const Table* table = nullptr;
  std::vector<int> column_ids;
  double scan_rows = 0.0;
  std::vector<double> scan_sorted_frac;
  uint64_t table_epoch = 0;

  // kFilter
  ExprPtr predicate;
  // Learned conjunct execution order (DESIGN §15): the lowered
  // FilterOp publishes its adaptive cost-per-dropped-row ranking here
  // (packed byte-per-rank word; 0 = not yet learned — never a valid
  // permutation for the >= 2 conjuncts adaptivity needs), so a
  // PreparedQuery's next execution of the same plan node starts from
  // the learned order instead of re-learning. The one deliberately
  // mutable cell of the otherwise immutable tree: a monotonic
  // performance hint, never semantics. Shared (not re-created) by
  // RefreshScanStats copies; excluded from PlanFingerprint.
  std::shared_ptr<std::atomic<uint64_t>> learned_conjunct_order;

  // kProject (expression i produces column names[i])
  std::vector<ExprPtr> exprs;

  // kJoin
  std::vector<std::string> probe_keys;
  std::vector<std::string> build_keys;
  std::vector<std::string> build_payload;
  JoinKind join_kind = JoinKind::kInner;
  // nullopt = the engine knob decides at lowering time.
  std::optional<JoinStrategy> strategy;
  std::function<ExprPtr(const ColScope&)> residual;

  // kGroupBy
  std::vector<std::string> group_keys;
  std::vector<AggItem> aggs;

  // kOrderBy
  std::vector<OrderItem> order_keys;
  int64_t limit = -1;

  // kExchangeSend / kExchangeRecv (DESIGN §14). The channel is the
  // shared-memory mailbox between two distributed stages; the shard id
  // names this plan's side of it (sender lane / receiver bucket). Send
  // nodes carry the routing key columns (empty = single-bucket keyless
  // exchange); recv nodes reuse `scan_rows` for the exact post-barrier
  // cardinality the coordinator seeds them with.
  std::shared_ptr<ExchangeChannel> exchange;
  int exchange_shard = 0;
  std::vector<std::string> exchange_keys;

  ColScope scope() const { return ColScope(names, types); }
};

// An immutable, engine-independent, reusable query plan. Cheap to copy
// (shared tree). Obtained from PlanBuilder::Build(); consumed by
// Query::SetPlan / Engine::CreateQuery(plan) / Engine::Prepare.
class LogicalPlan {
 public:
  LogicalPlan() = default;

  bool valid() const { return root_ != nullptr; }
  const LogicalNode* root() const { return root_.get(); }
  const std::shared_ptr<const LogicalNode>& root_ptr() const {
    return root_;
  }

  // Output schema of the plan's terminal.
  const std::vector<std::string>& output_names() const {
    return root_->names;
  }
  const std::vector<LogicalType>& output_types() const {
    return root_->types;
  }

  // Total node count (spine + build subtrees); sizes the QEP's splice
  // reservation for staged lowering.
  int num_nodes() const;

 private:
  friend class PlanBuilder;
  friend LogicalPlan RefreshScanStats(const LogicalPlan& plan);
  explicit LogicalPlan(std::shared_ptr<const LogicalNode> root)
      : root_(std::move(root)) {}

  std::shared_ptr<const LogicalNode> root_;
};

// True when any scan node's build-time epoch snapshot differs from the
// live Table::epoch() — i.e. a SealPartition has happened since the
// plan (and its frozen scan statistics) was built.
bool PlanIsStale(const LogicalPlan& plan);

// A structurally identical plan whose scan nodes carry freshly sampled
// statistics (row counts, sortedness, epochs). Deep-copies the node
// tree and clones every expression; the result is as shareable and
// immutable as a freshly built plan.
LogicalPlan RefreshScanStats(const LogicalPlan& plan);

// Structural 64-bit fingerprint: two plans fingerprint equally iff
// their node trees match — same shapes, same tables (by identity), same
// column lists, same expressions including literals, same join/group/
// order configuration. Scan *statistics* (row counts, sortedness,
// epoch snapshots) are deliberately excluded, so a RefreshScanStats
// copy keeps its fingerprint. Residual join predicates are fingerprinted
// by invoking the factory against the node's residual scope (it must be
// pure, which the LogicalNode contract already requires). This is the
// key of the server's prepared-statement cache (src/server/stmt_cache.h);
// process-local only — never persist it.
uint64_t PlanFingerprint(const LogicalPlan& plan);

// Fluent construction of a LogicalPlan. A PlanBuilder represents the
// open tail of a plan under construction: purely a logical-tree cursor —
// no pipelines, jobs or operator state exist until the plan is lowered
// against an Engine (engine/lowering.h). Where the engine used to hand
// out builders (q->Scan(...)), plans now start from the static Scan and
// are handed to the engine whole:
//
//   PlanBuilder pb = PlanBuilder::Scan(&lineitem, {"l_shipdate", ...});
//   pb.Filter(...).GroupBy(...);
//   pb.CollectResult();                  // or pb.OrderBy(...)
//   LogicalPlan plan = pb.Build();
//   ResultSet r = engine.CreateQuery(plan)->Execute();   // or
//   PreparedQuery pq = engine.Prepare(plan);             // many Executes
class PlanBuilder {
 public:
  // Root of a plan: a NUMA-local partitioned table scan projecting
  // `columns`. Samples the storage-side statistics (row count, cached
  // per-column sortedness probe) that lowering-time strategy choices
  // start from.
  static PlanBuilder Scan(const Table* table,
                          std::vector<std::string> columns);

  // Root of a distributed receive stage: a morsel source over the
  // channel's buffered rows, named `columns` (types come from the
  // channel schema). `est_rows` is the exact post-send cardinality the
  // coordinator read from the channel. Built by the sharded planner;
  // see src/shard/ and DESIGN §14.
  static PlanBuilder ExchangeRecv(std::shared_ptr<ExchangeChannel> channel,
                                  int shard,
                                  std::vector<std::string> columns,
                                  double est_rows);

  PlanBuilder(PlanBuilder&&) = default;
  PlanBuilder& operator=(PlanBuilder&&) = default;

  // --- column scope --------------------------------------------------------
  ExprPtr Col(std::string_view name) const { return scope().Col(name); }
  LogicalType ColType(std::string_view name) const {
    return scope().Type(name);
  }
  ColScope scope() const { return node_->scope(); }

  // --- intra-pipeline operators --------------------------------------------
  PlanBuilder& Filter(ExprPtr predicate);
  PlanBuilder& Project(std::vector<NamedExpr> exprs);
  template <typename... Rest>
  PlanBuilder& Project(NamedExpr first, Rest... rest) {
    std::vector<NamedExpr> v;
    v.reserve(1 + sizeof...(rest));
    v.push_back(std::move(first));
    (v.push_back(std::move(rest)), ...);
    return Project(std::move(v));
  }

  // Joins `build` as the build side; *this continues as the probe side.
  // Output columns are this side's columns followed by `build_payload`
  // (renamed as-is) — except for semi/anti joins, whose output is the
  // probe columns only. `residual`, if given, is re-invoked per lowering
  // against the combined scope (probe columns + build payload) and must
  // be pure. Whether the join runs hashed or merge-sorted is decided at
  // lowering time (or, for kAdaptive under runtime feedback, at the
  // pipeline boundary): HashJoin/MergeJoin force a strategy, Join takes
  // an optional per-join override and otherwise defers to the engine
  // knob. Kinds the merge join does not support always run hashed.
  PlanBuilder& Join(
      PlanBuilder build, std::vector<std::string> probe_keys,
      std::vector<std::string> build_keys,
      std::vector<std::string> build_payload, JoinKind kind,
      std::function<ExprPtr(const ColScope&)> residual = nullptr,
      std::optional<JoinStrategy> strategy = std::nullopt);
  PlanBuilder& HashJoin(
      PlanBuilder build, std::vector<std::string> probe_keys,
      std::vector<std::string> build_keys,
      std::vector<std::string> build_payload, JoinKind kind,
      std::function<ExprPtr(const ColScope&)> residual = nullptr) {
    return Join(std::move(build), std::move(probe_keys),
                std::move(build_keys), std::move(build_payload), kind,
                std::move(residual), JoinStrategy::kHash);
  }
  PlanBuilder& MergeJoin(
      PlanBuilder build, std::vector<std::string> probe_keys,
      std::vector<std::string> build_keys,
      std::vector<std::string> build_payload, JoinKind kind,
      std::function<ExprPtr(const ColScope&)> residual = nullptr) {
    return Join(std::move(build), std::move(probe_keys),
                std::move(build_keys), std::move(build_payload), kind,
                std::move(residual), JoinStrategy::kMerge);
  }

  // GROUP BY: the builder continues from the aggregation output with
  // columns [keys..., agg outputs...].
  PlanBuilder& GroupBy(std::vector<std::string> keys,
                       std::vector<AggItem> aggs);

  // --- terminals -----------------------------------------------------------
  // ORDER BY [LIMIT] (parallel sort / top-k heap at execution time).
  void OrderBy(std::vector<OrderItem> keys, int64_t limit = -1);
  // Unordered terminal: collects all rows.
  void CollectResult();
  // Distributed terminal: scatters rows into `channel`'s buckets by the
  // hash of `keys` (empty = everything to bucket 0), writing through
  // this plan's sender lane `shard`. The downstream stage reads them
  // back with ExchangeRecv.
  void ExchangeSend(std::shared_ptr<ExchangeChannel> channel, int shard,
                    std::vector<std::string> keys);

  // Freezes the plan. Requires a terminal (OrderBy/CollectResult); the
  // builder is spent afterwards.
  LogicalPlan Build();

 private:
  explicit PlanBuilder(std::shared_ptr<LogicalNode> node)
      : node_(std::move(node)) {}

  // Wraps the current tree in a fresh node of `kind` (current tree
  // becomes `input`) and returns the new mutable node.
  LogicalNode* Wrap(LogicalNode::Kind kind);

  std::shared_ptr<LogicalNode> node_;
  bool terminal_ = false;
};

}  // namespace morsel

#endif  // MORSELDB_ENGINE_LOGICAL_PLAN_H_
