#include "engine/engine.h"

#include "engine/query.h"

namespace morsel {

Engine::Engine(const Topology& topo, const EngineOptions& opts)
    : topo_(topo), opts_(opts) {
  int n = opts.num_workers > 0 ? opts.num_workers : topo_.total_cores();
  stats_ = std::make_unique<MemStatsRegistry>(n + 1);
  if (opts.record_trace) {
    trace_ = std::make_unique<TraceRecorder>(n + 1);
  }
  dispatcher_ = std::make_unique<Dispatcher>(topo_);
  WorkerPool::Options popts;
  popts.num_workers = n;
  popts.pin = opts.pin_threads;
  popts.slow_core = opts.simulate_slow_core;
  popts.slow_factor = opts.slow_core_factor;
  pool_ = std::make_unique<WorkerPool>(topo_, dispatcher_.get(),
                                       stats_.get(), trace_.get(), popts);
}

Engine::~Engine() = default;

std::unique_ptr<Query> Engine::CreateQuery(double priority) {
  return std::make_unique<Query>(
      this, next_query_id_.fetch_add(1, std::memory_order_relaxed),
      priority);
}

}  // namespace morsel
