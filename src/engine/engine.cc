#include "engine/engine.h"

#include "engine/query.h"

namespace morsel {

Engine::Engine(const Topology& topo, const EngineOptions& opts)
    : topo_(topo), opts_(opts) {
  int n = opts.num_workers > 0 ? opts.num_workers : topo_.total_cores();
  stats_ = std::make_unique<MemStatsRegistry>(n + 1);
  if (opts.record_trace) {
    trace_ = std::make_unique<TraceRecorder>(n + 1);
  }
  dispatcher_ = std::make_unique<Dispatcher>(topo_);
  WorkerPool::Options popts;
  popts.num_workers = n;
  popts.pin = opts.pin_threads;
  popts.slow_core = opts.simulate_slow_core;
  popts.slow_factor = opts.slow_core_factor;
  pool_ = std::make_unique<WorkerPool>(topo_, dispatcher_.get(),
                                       stats_.get(), trace_.get(), popts);
}

Engine::~Engine() = default;

std::unique_ptr<Query> Engine::CreateQuery(double priority) {
  return std::make_unique<Query>(
      this, next_query_id_.fetch_add(1, std::memory_order_relaxed),
      priority);
}

std::unique_ptr<Query> Engine::CreateQuery(const LogicalPlan& plan,
                                           double priority) {
  std::unique_ptr<Query> q = CreateQuery(priority);
  q->SetPlan(plan);
  return q;
}

PreparedQuery Engine::Prepare(LogicalPlan plan) {
  MORSEL_CHECK_MSG(plan.valid(), "Prepare requires a built LogicalPlan");
  return PreparedQuery(this, std::move(plan));
}

std::unique_ptr<Query> PreparedQuery::MakeQuery(
    double priority, int64_t memory_budget_bytes) const {
  MORSEL_CHECK_MSG(valid(), "PreparedQuery is empty");
  // Budget installs before SetPlan so lowering allocations are governed.
  auto lower = [&](const LogicalPlan& plan) {
    std::unique_ptr<Query> q = engine_->CreateQuery(priority);
    if (memory_budget_bytes > 0) q->SetMemoryBudget(memory_budget_bytes);
    q->SetPlan(plan);
    return q;
  };
  if (!PlanIsStale(plan_)) {
    return lower(plan_);
  }
  // A SealPartition happened after the plan snapshot: the frozen scan
  // statistics (and anything derived from them at lowering time) no
  // longer describe the data.
  MORSEL_CHECK_MSG(
      engine_->options().prepared_stale != PreparedStalePolicy::kError,
      "prepared plan is stale (table sealed after Prepare)");
  LogicalPlan fresh;
  {
    std::lock_guard<std::mutex> lock(refresh_->mu);
    if (!refresh_->plan.valid() || PlanIsStale(refresh_->plan)) {
      refresh_->plan = RefreshScanStats(plan_);
    }
    fresh = refresh_->plan;  // cheap: shared tree
  }
  return lower(fresh);
}

ResultSet PreparedQuery::Execute(double priority) const {
  return MakeQuery(priority)->Execute();
}

}  // namespace morsel
