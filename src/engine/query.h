#ifndef MORSELDB_ENGINE_QUERY_H_
#define MORSELDB_ENGINE_QUERY_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/qep.h"
#include "engine/engine.h"
#include "engine/logical_plan.h"
#include "exec/result.h"

namespace morsel {

// One execution of a LogicalPlan. Holds the QEP object (the passive
// per-query state machine), the query context, and owns all operator
// state (join hash tables, aggregation partitions, sort runs) plus the
// lowering pass that created them — including pipelines spliced in at
// runtime by staged adaptive-join lowering (DESIGN §9).
//
// Plan construction is a separate, engine-independent layer
// (engine/logical_plan.h); the physical lowering happens in SetPlan:
//
//   PlanBuilder pb = PlanBuilder::Scan(&lineitem, {...});
//   pb.Filter(...).GroupBy(...);
//   pb.CollectResult();
//   auto q = engine.CreateQuery(pb.Build());  // CreateQuery + SetPlan
//   ResultSet r = q->Execute();
class Query {
 public:
  Query(Engine* engine, int id, double priority);
  ~Query();

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  Engine* engine() const { return engine_; }
  QueryContext* context() { return &context_; }

  // Lowers `plan` into this query's QEP (engine/lowering.h). Callable
  // once, before Start(). The query keeps a reference to the shared
  // plan tree for its lifetime (staged lowering reads it mid-run).
  void SetPlan(const LogicalPlan& plan);
  const LogicalPlan& plan() const { return plan_; }

  // --- execution -----------------------------------------------------------
  void Start();         // submits the first pipelines; returns immediately
  void Wait();          // blocks until all pipelines completed
  // Bounded wait; true iff the query finished within `timeout`. Lets
  // callers poll long queries without blocking forever.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) {
    return context_.WaitFor(timeout);
  }
  ResultSet Execute();  // Start + Wait + TakeResult
  // On a clean query, the collected result. On a failed one (cancel,
  // deadline, budget breach, internal error) an empty ResultSet whose
  // status() carries the structured error — never a process abort.
  // Single-shot and safe against concurrent callers: exactly one caller
  // gets the rows, later/losing callers get an empty ResultSet with a
  // kInternal "result already consumed" status.
  ResultSet TakeResult();
  void Cancel();        // §3.2: takes effect at morsel boundaries
  // Terminal status of this execution (kOk while still running).
  QueryStatus status() const { return context_.status(); }

  // Elasticity (§3.1): caps the number of workers on this query; can be
  // called at any time, including mid-execution.
  void SetMaxWorkers(int n) { context_.set_max_workers(n); }

  // --- resource governance (DESIGN §11) ------------------------------------
  // Per-query overrides of the EngineOptions defaults. Budget and fault
  // injection must be set before Start (the budget additionally before
  // SetPlan to govern lowering-time allocations); the deadline may be
  // tightened at any time.
  void SetMemoryBudget(int64_t bytes) { context_.set_memory_budget(bytes); }
  void SetDeadline(std::chrono::milliseconds after) {
    context_.SetDeadline(std::chrono::steady_clock::now() + after);
  }
  void SetFaultInjection(const FaultInjectionOptions& opts) {
    context_.set_fault_injector(std::make_unique<FaultInjector>(opts));
  }

  // EXPLAIN-style dump of the pipeline DAG. Valid once a plan is set;
  // pipelines a deferred adaptive join splices in at runtime appear as
  // the query executes (their placeholder line carries the decision and
  // whether runtime feedback revised the plan-time choice). After
  // execution, a final line reports the tracked peak memory.
  std::string ExplainPlan() const;

  // --- internal (used by the lowering pass) --------------------------------
  int AddJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps);
  int SpliceJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps,
                int gate);
  PipelineJob* job(int id) const { return qep_.pipeline(id); }
  template <typename T, typename... Args>
  T* Own(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    owned_.push_back(
        std::unique_ptr<void, void (*)(void*)>(owned.release(), [](void* p) {
          delete static_cast<T*>(p);
        }));
    return raw;
  }
  void SetResultProvider(std::function<ResultSet()> fn) {
    result_fn_ = std::move(fn);
  }
  int num_worker_slots() const { return context_.num_worker_slots(); }

 private:
  Engine* engine_;
  QueryContext context_;
  QepObject qep_;
  LogicalPlan plan_;
  bool started_ = false;
  std::atomic<bool> result_taken_{false};
  std::function<ResultSet()> result_fn_;
  // Type-erased owned operator state (JoinState, GroupByState, sinks,
  // the Lowering instance...). Appended to by the plan-time pass and by
  // runtime splices; at most one splice runs at a time (single pending
  // decision job per query) and teardown waits for completion, so no
  // locking is needed.
  std::vector<std::unique_ptr<void, void (*)(void*)>> owned_;
};

}  // namespace morsel

#endif  // MORSELDB_ENGINE_QUERY_H_
