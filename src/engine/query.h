#ifndef MORSELDB_ENGINE_QUERY_H_
#define MORSELDB_ENGINE_QUERY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/qep.h"
#include "engine/engine.h"
#include "exec/aggregation.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/result.h"
#include "exec/sort.h"
#include "storage/table.h"

namespace morsel {

class PlanBuilder;

// Resolves column names to expressions in a given column scope (used for
// residual join predicates whose scope is probe + build columns).
class ColScope {
 public:
  ColScope(std::vector<std::string> names, std::vector<LogicalType> types)
      : names_(std::move(names)), types_(std::move(types)) {}

  int Index(std::string_view name) const;
  LogicalType Type(std::string_view name) const {
    return types_[Index(name)];
  }
  ExprPtr Col(std::string_view name) const {
    int i = Index(name);
    return ColRef(i, types_[i]);
  }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<LogicalType>& types() const { return types_; }

 private:
  std::vector<std::string> names_;
  std::vector<LogicalType> types_;
};

// A named output expression for projections.
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

// Shorthand constructor (NamedExpr is move-only, so projection lists are
// written Project(NE("a", ...), NE("b", ...)) rather than with braces).
inline NamedExpr NE(std::string name, ExprPtr expr) {
  return NamedExpr{std::move(name), std::move(expr)};
}

// One aggregate in a GROUP BY.
struct AggItem {
  AggFunc func;
  ExprPtr input;  // nullptr for COUNT(*)
  std::string out_name;
};

// One ORDER BY key by column name.
struct OrderItem {
  std::string name;
  bool ascending = true;
};

// A query under construction and execution. Holds the QEP object (the
// passive per-query state machine), the query context, and owns all
// operator state (join hash tables, aggregation partitions, sort runs)
// for the duration of the query.
//
// Usage:
//   auto q = engine.CreateQuery();
//   PlanBuilder pb = q->Scan(&lineitem, {"l_shipdate", "l_quantity"});
//   pb.Filter(...).GroupBy(...);
//   pb.CollectResult();                 // or pb.OrderBy(...)
//   ResultSet r = q->Execute();
class Query {
 public:
  Query(Engine* engine, int id, double priority);
  ~Query();

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  Engine* engine() const { return engine_; }
  QueryContext* context() { return &context_; }

  // Root of a plan: a NUMA-local partitioned table scan projecting
  // `columns`.
  PlanBuilder Scan(const Table* table, std::vector<std::string> columns);

  // --- execution -----------------------------------------------------------
  void Start();         // submits the first pipelines; returns immediately
  void Wait();          // blocks until all pipelines completed
  ResultSet Execute();  // Start + Wait + TakeResult
  ResultSet TakeResult();
  void Cancel();        // §3.2: takes effect at morsel boundaries

  // Elasticity (§3.1): caps the number of workers on this query; can be
  // called at any time, including mid-execution.
  void SetMaxWorkers(int n) { context_.set_max_workers(n); }

  // EXPLAIN-style dump of the pipeline DAG (valid once the plan is
  // fully built, before or after execution).
  std::string ExplainPlan() const { return qep_.Describe(); }

  // --- internal (used by PlanBuilder) --------------------------------------
  int AddExecJob(std::string name, std::unique_ptr<Pipeline> pipeline,
                 std::vector<int> deps);
  int AddJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps);
  template <typename T, typename... Args>
  T* Own(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    owned_.push_back(
        std::unique_ptr<void, void (*)(void*)>(owned.release(), [](void* p) {
          delete static_cast<T*>(p);
        }));
    return raw;
  }
  void SetResultProvider(std::function<ResultSet()> fn) {
    result_fn_ = std::move(fn);
  }
  int num_worker_slots() const { return context_.num_worker_slots(); }

 private:
  Engine* engine_;
  QueryContext context_;
  QepObject qep_;
  bool started_ = false;
  std::function<ResultSet()> result_fn_;
  // Type-erased owned operator state (JoinState, GroupByState, sinks...).
  std::vector<std::unique_ptr<void, void (*)(void*)>> owned_;
};

// Fluent plan construction. A PlanBuilder represents the open (not yet
// pipeline-broken) tail of a plan: a source, the operator chain built so
// far, the QEP dependencies, and the column scope. Pipeline breakers
// (join build sides, GROUP BY, ORDER BY) close pipelines into jobs.
class PlanBuilder {
 public:
  PlanBuilder(Query* query, std::unique_ptr<Source> source,
              std::vector<std::string> names,
              std::vector<LogicalType> types, std::vector<int> deps);

  PlanBuilder(PlanBuilder&&) = default;
  PlanBuilder& operator=(PlanBuilder&&) = default;

  // --- column scope ---------------------------------------------------------
  ExprPtr Col(std::string_view name) const { return scope().Col(name); }
  LogicalType ColType(std::string_view name) const {
    return scope().Type(name);
  }
  ColScope scope() const { return ColScope(names_, types_); }

  // --- intra-pipeline operators ----------------------------------------------
  PlanBuilder& Filter(ExprPtr predicate);
  PlanBuilder& Project(std::vector<NamedExpr> exprs);
  template <typename... Rest>
  PlanBuilder& Project(NamedExpr first, Rest... rest) {
    std::vector<NamedExpr> v;
    v.reserve(1 + sizeof...(rest));
    v.push_back(std::move(first));
    (v.push_back(std::move(rest)), ...);
    return Project(std::move(v));
  }

  // Hash join: `build` becomes the build side (materialize + insert
  // pipelines); *this continues as the probe pipeline. Output columns are
  // this side's columns followed by `build_payload` (renamed as-is) —
  // except for semi/anti joins, whose output is the probe columns only.
  // `residual`, if given, is built against the combined scope (probe
  // columns + build keys + build payload) and filters matches.
  PlanBuilder& HashJoin(
      PlanBuilder build, std::vector<std::string> probe_keys,
      std::vector<std::string> build_keys,
      std::vector<std::string> build_payload, JoinKind kind,
      std::function<ExprPtr(const ColScope&)> residual = nullptr);

  // MPSM-style sort-merge equi-join (same signature shape and output
  // semantics as HashJoin; kRightOuterMark is unsupported). Both sides
  // materialize NUMA-local sorted runs, global separator keys range-
  // partition them, and each output partition merge-joins as one
  // independent morsel. Breaks *both* pipelines: the returned builder
  // continues from the partition-merge-join source.
  PlanBuilder& MergeJoin(
      PlanBuilder build, std::vector<std::string> probe_keys,
      std::vector<std::string> build_keys,
      std::vector<std::string> build_payload, JoinKind kind,
      std::function<ExprPtr(const ColScope&)> residual = nullptr);

  // Strategy-dispatching join. The per-call `strategy` override wins;
  // without one the engine's EngineOptions::join_strategy knob applies.
  // kAdaptive resolves here, at plan time, from the builders' cardinality
  // estimates and the sampled sortedness of the leading key column on
  // each side (storage-side column stats, propagated through
  // filters/projections): near-sorted inputs of useful size route to the
  // merge join — whose local sorts then degenerate to detection scans —
  // everything else to hash. Kinds the merge join does not support
  // always fall back to hash.
  PlanBuilder& Join(
      PlanBuilder build, std::vector<std::string> probe_keys,
      std::vector<std::string> build_keys,
      std::vector<std::string> build_payload, JoinKind kind,
      std::function<ExprPtr(const ColScope&)> residual = nullptr,
      std::optional<JoinStrategy> strategy = std::nullopt);

  // GROUP BY: breaks the pipeline (two-phase aggregation); the returned
  // builder continues from the aggregation output with columns
  // [keys..., agg outputs...].
  PlanBuilder& GroupBy(std::vector<std::string> keys,
                       std::vector<AggItem> aggs);

  // --- terminals --------------------------------------------------------------
  // ORDER BY [LIMIT]: parallel sort (§4.5) or top-k heap for small
  // limits. Terminal: sets the query's result provider.
  void OrderBy(std::vector<OrderItem> keys, int64_t limit = -1);
  // Unordered terminal: collects all rows.
  void CollectResult();

  // --- planner statistics (heuristic, never affect semantics) ---------------
  // Estimated output rows of the open pipeline tail.
  double est_rows() const { return est_rows_; }
  // Sortedness of column `name` in the current scope: in-order fraction
  // of adjacent pairs ([0,1]), or -1 when unknown (derived columns).
  double SortedFracOf(std::string_view name) const {
    return sorted_frac_[scope().Index(name)];
  }

 private:
  friend class Query;

  // Closes the current pipeline with the given sink; returns the job id.
  int CloseInto(Sink* sink, const std::string& name);

  // Resolves kAdaptive for one join (see Join).
  JoinStrategy ChooseJoinStrategy(
      const PlanBuilder& build, const std::vector<std::string>& probe_keys,
      const std::vector<std::string>& build_keys) const;

  // Shared join-planner prologue (both strategies must agree on it
  // exactly — the differential tests depend on identical semantics):
  // re-projects `build` to [keys..., payload...], and resolves the
  // residual against this side's columns + the emitted payload.
  struct JoinBuildPlan {
    std::vector<LogicalType> build_types;    // [key types..., payload...]
    std::vector<LogicalType> payload_types;
    ExprPtr residual;                        // nullptr if none given
  };
  JoinBuildPlan PrepareJoinBuild(
      PlanBuilder& build, const std::vector<std::string>& build_keys,
      const std::vector<std::string>& build_payload,
      const std::function<ExprPtr(const ColScope&)>& residual);

  Query* query_;
  std::unique_ptr<Source> source_;
  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<std::string> names_;
  std::vector<LogicalType> types_;
  std::vector<int> deps_;
  // Planner statistics: seeded by Query::Scan from storage-side column
  // stats, propagated through operators, consumed by ChooseJoinStrategy.
  double est_rows_ = 0.0;
  std::vector<double> sorted_frac_;  // one per scope column; -1 unknown
  // Prepended to the next closed pipeline's job name; set when a
  // non-scan source (partition merge join) starts the open pipeline so
  // ExplainPlan names the whole segment.
  std::string name_prefix_;
};

}  // namespace morsel

#endif  // MORSELDB_ENGINE_QUERY_H_
