#ifndef MORSELDB_ENGINE_LOWERING_H_
#define MORSELDB_ENGINE_LOWERING_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline_job.h"
#include "engine/logical_plan.h"
#include "exec/pipeline.h"

namespace morsel {

class Engine;
class Query;
class AdaptiveDecisionJob;
class TableScanSource;

// The physical lowering pass: walks an immutable LogicalPlan and
// produces the QEP pipelines, jobs and operator state a Query executes
// (the physical half of what PlanBuilder used to do in one shot).
//
// Lowering is *staged* (DESIGN §9). Most of the tree lowers at plan
// time, but a kAdaptive join whose inputs end in pipeline breakers is
// represented by a placeholder AdaptiveDecisionJob gated on those
// breakers: when they complete, the decision job reads their actual
// rows_produced() (plus the propagated sortedness of the key columns),
// re-decides hash vs merge with real cardinalities, and splices the
// chosen join's pipelines — and the rest of the plan spine — into the
// running QEP. With EngineOptions::runtime_feedback off, every
// kAdaptive join resolves eagerly from the plan-time estimates.
//
// One Lowering instance belongs to one Query (owned via Query::Own) and
// must outlive all decision jobs it registered. At most one decision
// job is pending per query at any time (deferral only happens on the
// plan's root spine, and each continuation creates the next), so Resume
// never runs concurrently with itself.
class Lowering {
 public:
  Lowering(Query* query, const LogicalNode* root);

  // Plan-time pass. Registers all eagerly lowerable pipelines with the
  // query's QEP; may leave a pending AdaptiveDecisionJob gating the
  // remainder of the spine.
  void Run();

  // Runtime continuation, called from the decision job's Finalize on a
  // worker thread: resolves the deferred join with cardinality feedback
  // and splices the remaining pipelines into the running QEP.
  void Resume(AdaptiveDecisionJob* dj);

  // Open (not yet pipeline-broken) tail of a plan segment under
  // lowering: the physical mirror of the old PlanBuilder internals,
  // plus the planner statistics and the feedback bookkeeping.
  struct OpenPipe {
    std::unique_ptr<Source> source;
    std::vector<std::unique_ptr<Operator>> ops;
    std::vector<int> deps;
    // Set while the pipe is a table scan followed only by filters: the
    // window in which filter conjuncts may register zone-map SARGs
    // (their column indices still name scan output columns). Cleared
    // by any operator that reshapes the scope (projection, join probe).
    TableScanSource* scan_source = nullptr;
    // Prepended to the next closed pipeline's job name (set when a
    // non-scan source starts the pipe, so ExplainPlan names the whole
    // segment).
    std::string name_prefix;
    // Current scope.
    std::vector<std::string> names;
    std::vector<LogicalType> types;
    // Planner statistics (heuristic, never affect semantics).
    double est_rows = 0.0;
    std::vector<double> sorted_frac;  // per scope column; -1 unknown
    // Runtime-feedback bookkeeping: the last upstream breaker job on
    // this pipe (-1 = scan-rooted, no feedback possible) and the
    // product of selectivity guesses applied since, so the breaker's
    // actual rows_produced() re-estimates this pipe's cardinality.
    int feeder_job = -1;
    double feeder_mult = 1.0;
    // Scope columns whose *actual* sortedness the feeder breaker
    // observes at runtime (LocalSortRunsJob counts presorted /
    // naturally merged runs): the deferred adaptive-join decision
    // refreshes sorted_frac for them from the feeder's
    // observed_sorted() before choosing a strategy.
    std::vector<std::string> order_feeder_cols;
    // Table-backed statistics window (like scan_source, but kept for
    // stats only): while the scope is still the scan's columns,
    // stats_cols[i] is the table column id of scope column i, so
    // multi-key joins can probe composite lexicographic sortedness.
    // Cleared whenever the scope reshapes.
    const Table* stats_table = nullptr;
    std::vector<int> stats_cols;
    // Pending filter accumulation (EngineOptions::fused_pipelines):
    // conjuncts of adjacent kFilter nodes collect here and flush into
    // ONE FilterOp at the next non-filter lowering step, so the
    // adaptive cost-per-dropped-row ranking reorders conjuncts across
    // the original Filter() boundaries. `pending_persist` is the first
    // contributing node's plan-owned learned-order slot.
    std::vector<ExprPtr> pending_conjuncts;
    std::vector<int> pending_slots;
    std::atomic<uint64_t>* pending_persist = nullptr;
    // Plan-time ExplainPlan annotations accumulated for the job that
    // closes this pipe ("[warm-conjunct-order]", "[fused: ...]").
    std::string pending_info;

    int Index(const std::string& name) const;
  };

 private:
  friend class AdaptiveDecisionJob;

  // Chain of nodes from the scan (front) to `tail` (back) along input
  // edges.
  static std::vector<const LogicalNode*> ChainOf(const LogicalNode* tail);

  // Lowers chain[start..] onto `pipe`. `allow_defer` is true only on
  // the plan's root spine: a deferral registers a decision job and
  // returns nullopt (nothing past the join is lowered). Otherwise
  // returns the open pipe after the last node (for the root spine,
  // whose last node is a terminal, an empty pipe).
  std::optional<OpenPipe> LowerNodes(
      const std::vector<const LogicalNode*>& chain, size_t start,
      OpenPipe pipe, bool allow_defer);

  OpenPipe StartChain(const LogicalNode* scan);
  // Lowers a whole build subtree (kAdaptive inside it resolves eagerly
  // from plan-time stats — deferral happens on the root spine only).
  OpenPipe LowerSubtree(const LogicalNode* tail);

  void LowerFilter(const LogicalNode* n, OpenPipe& pipe);
  // Flushes the pipe's accumulated filter conjuncts into one FilterOp
  // (no-op when none are pending). Called by every non-filter lowering
  // step before it appends its own operator, and by ClosePipe.
  void FlushPendingFilter(OpenPipe& pipe);
  // Registers a SARGable conjunct with the pipe's scan for zone-map
  // checking; returns the mask slot or -1 (type mismatch, slot budget).
  int RegisterSarg(const Sarg& sarg, OpenPipe& pipe);
  void LowerProject(const LogicalNode* n, OpenPipe& pipe);
  OpenPipe LowerGroupBy(const LogicalNode* n, OpenPipe pipe);
  // Resolves kAdaptive (using feedback from completed feeders, plan
  // estimates otherwise), records the decision annotation — on
  // `decision` when non-null, else on the build-side close job — and
  // lowers the join.
  OpenPipe ResolveJoin(const LogicalNode* n, JoinStrategy s,
                       OpenPipe probe, OpenPipe build,
                       AdaptiveDecisionJob* decision);
  OpenPipe LowerResolvedJoin(const LogicalNode* n, JoinStrategy strategy,
                             OpenPipe probe, OpenPipe build,
                             std::string annotation);
  void LowerOrderBy(const LogicalNode* n, OpenPipe pipe);
  void LowerCollect(const LogicalNode* n, OpenPipe pipe);
  void LowerExchangeSend(const LogicalNode* n, OpenPipe pipe);

  // Shared join-planner prologue (both strategies must agree on it
  // exactly): re-projects the build pipe to [keys..., payload...] and
  // resolves the residual against probe columns + emitted payload.
  struct JoinBuildPlan {
    std::vector<LogicalType> build_types;  // [key types..., payload...]
    std::vector<LogicalType> payload_types;
    ExprPtr residual;  // nullptr if none given
  };
  JoinBuildPlan PrepareJoinBuild(const LogicalNode* n, OpenPipe& probe,
                                 OpenPipe& build);

  // Side cardinality for the strategy choice: the feeder's actual
  // rows_produced() scaled by the post-feeder selectivity once the
  // feeder completed, the heuristic estimate otherwise. `used_feedback`
  // reports which one it was.
  double SideRows(const OpenPipe& pipe, bool* used_feedback) const;
  bool FeederPending(const OpenPipe& pipe) const;
  // Key sortedness for the strategy choice: the composite lexicographic
  // table probe for multi-key joins still inside the scan-stats window,
  // the leading key's propagated per-column stat otherwise.
  double SideSorted(const OpenPipe& pipe,
                    const std::vector<std::string>& keys) const;
  // Runtime order feedback: once the pipe's feeder breaker completed
  // and observed its data's actual sortedness, replaces the plan-time
  // sorted_frac of the observed columns. Returns the observed fraction,
  // or -1 when no observation applied.
  double ApplyObservedOrder(OpenPipe& pipe) const;
  // Appends to a job's ExplainPlan annotation (set_info overwrites).
  void AppendInfo(int job_id, const std::string& info);

  static JoinStrategy Choose(double probe_rows, double build_rows,
                             double probe_sorted, double build_sorted);

  // Closes `pipe` into `sink`; returns the job id. Runtime mode splices
  // instead of adding.
  int ClosePipe(OpenPipe& pipe, Sink* sink, const std::string& name);
  int EmitJob(std::unique_ptr<PipelineJob> job, std::vector<int> deps);

  Query* query_;
  Engine* engine_;
  const LogicalNode* root_;
  // Pipeline id of the decision job whose Finalize we are inside, or -1
  // during the plan-time pass. Every job emitted while it is set is
  // spliced into the running QEP gated on it.
  int splice_gate_ = -1;
};

// Plan-time placeholder for a deferred adaptive join (staged lowering).
// Has no morsels: it completes as soon as its dependencies — the
// pipeline breakers feeding the join's inputs — have, and its Finalize
// performs the strategy decision and splices the chosen pipelines into
// the QEP. ExplainPlan shows the decision and whether runtime feedback
// revised the plan-time choice via set_info.
class AdaptiveDecisionJob final : public PipelineJob {
 public:
  AdaptiveDecisionJob(QueryContext* query, std::string name,
                      Lowering* lowering, MorselQueue::Options opts,
                      std::vector<const LogicalNode*> chain,
                      size_t join_index, Lowering::OpenPipe probe,
                      Lowering::OpenPipe build)
      : PipelineJob(query, std::move(name)),
        lowering_(lowering),
        opts_(opts),
        chain_(std::move(chain)),
        join_index_(join_index),
        probe_(std::move(probe)),
        build_(std::move(build)) {}

  void Prepare(const Topology& topo) override {
    set_queue(std::make_unique<MorselQueue>(
        topo, std::vector<MorselRange>{}, opts_));
  }
  void RunMorsel(const Morsel& m, WorkerContext& ctx) override {
    (void)m;
    (void)ctx;
  }
  void Finalize(WorkerContext& ctx) override {
    (void)ctx;
    lowering_->Resume(this);
  }

 private:
  friend class Lowering;

  Lowering* lowering_;
  MorselQueue::Options opts_;
  std::vector<const LogicalNode*> chain_;  // root spine
  size_t join_index_;                      // chain_[join_index_] is the join
  Lowering::OpenPipe probe_;
  Lowering::OpenPipe build_;
};

}  // namespace morsel

#endif  // MORSELDB_ENGINE_LOWERING_H_
