#ifndef MORSELDB_VOLCANO_VOLCANO_H_
#define MORSELDB_VOLCANO_VOLCANO_H_

#include "engine/engine.h"

namespace morsel {

// Plan-driven ("Volcano-style") baseline executor configuration.
//
// The paper's §5.4 describes the exact emulation this module packages:
// "the Volcano approach typically assigns work to threads statically. To
// compare with this approach, we emulated it in our morsel-driven scheme
// by splitting the work into as many chunks as there are threads, i.e.,
// we set the morsel size to n/t". On top of the static division this
// baseline is NUMA-oblivious (exchange operators hash-route tuples with
// no placement awareness), performs no work stealing (parallelism is
// baked into the plan), and lacks the engine's adaptive optimizations
// (hash-table pointer tags) — reproducing the Vectorwise-like competitor
// of Figures 11/12 and Table 1.
EngineOptions MakeVolcanoOptions(EngineOptions base = {});

// The Figure 11 ablation variants.
EngineOptions MakeNotNumaAwareOptions(EngineOptions base = {});
EngineOptions MakeNonAdaptiveOptions(EngineOptions base = {});

}  // namespace morsel

#endif  // MORSELDB_VOLCANO_VOLCANO_H_
