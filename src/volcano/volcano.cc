#include "volcano/volcano.h"

namespace morsel {

EngineOptions MakeVolcanoOptions(EngineOptions base) {
  base.static_division = true;  // parallelism fixed at plan time
  base.numa_aware = false;      // no placement awareness
  base.steal = false;           // a finished thread idles at the exchange
  base.tagging = false;         // no adaptive probe filtering
  return base;
}

EngineOptions MakeNotNumaAwareOptions(EngineOptions base) {
  base.numa_aware = false;
  base.closest_first = false;
  return base;
}

EngineOptions MakeNonAdaptiveOptions(EngineOptions base) {
  base.static_division = true;
  base.tagging = false;
  return base;
}

}  // namespace morsel
