#include "ssb/ssb_queries.h"

#include <functional>
#include <vector>

#include "common/macros.h"

namespace morsel {

namespace {

using PredFn = std::function<ExprPtr(const PlanBuilder&)>;

// Q1.x: restricted date dimension x discount/quantity window over the
// fact table; revenue = sum(lo_extendedprice * lo_discount).
ResultSet FlightOne(Engine& e, const SsbData& db, const PredFn& date_pred,
                    int64_t disc_lo, int64_t disc_hi, int64_t qty_lo,
                    int64_t qty_hi) {
  PlanBuilder d = PlanBuilder::Scan(db.date_dim.get(),
                          {"d_datekey", "d_year", "d_yearmonthnum",
                           "d_weeknuminyear"});
  d.Filter(date_pred(d));
  PlanBuilder lo = PlanBuilder::Scan(db.lineorder.get(),
                           {"lo_orderdate", "lo_discount", "lo_quantity",
                            "lo_extendedprice"});
  lo.Filter(And(Ge(lo.Col("lo_discount"), ConstI64(disc_lo)),
                 Le(lo.Col("lo_discount"), ConstI64(disc_hi)),
                 Ge(lo.Col("lo_quantity"), ConstI64(qty_lo)),
                 Le(lo.Col("lo_quantity"), ConstI64(qty_hi))));
  lo.HashJoin(std::move(d), {"lo_orderdate"}, {"d_datekey"}, {},
              JoinKind::kSemi);
  std::vector<AggItem> aggs;
  aggs.push_back({AggFunc::kSum,
                  Mul(lo.Col("lo_extendedprice"),
                      ToF64(lo.Col("lo_discount"))),
                  "revenue"});
  lo.GroupBy({}, std::move(aggs));
  lo.CollectResult();
  return e.CreateQuery(lo.Build())->Execute();
}

// Q2.x: part restriction x supplier region; group by (d_year, p_brand1).
ResultSet FlightTwo(Engine& e, const SsbData& db, const PredFn& part_pred,
                    const char* supp_region) {
  PlanBuilder part = PlanBuilder::Scan(db.part.get(),
                             {"p_partkey", "p_category", "p_brand1"});
  part.Filter(part_pred(part));
  PlanBuilder sup = PlanBuilder::Scan(db.supplier.get(), {"s_suppkey", "s_region"});
  sup.Filter(Eq(sup.Col("s_region"), ConstStr(supp_region)));
  PlanBuilder d = PlanBuilder::Scan(db.date_dim.get(), {"d_datekey", "d_year"});

  PlanBuilder lo = PlanBuilder::Scan(db.lineorder.get(),
                           {"lo_orderdate", "lo_partkey", "lo_suppkey",
                            "lo_revenue"});
  lo.HashJoin(std::move(part), {"lo_partkey"}, {"p_partkey"}, {"p_brand1"},
              JoinKind::kInner);
  lo.HashJoin(std::move(sup), {"lo_suppkey"}, {"s_suppkey"}, {},
              JoinKind::kSemi);
  // Date joins go through the adaptive path: when a lineorder load is
  // date-clustered the stats route it to the merge join; the default
  // random-date generator resolves to hash.
  lo.Join(std::move(d), {"lo_orderdate"}, {"d_datekey"}, {"d_year"},
          JoinKind::kInner, nullptr, JoinStrategy::kAdaptive);
  std::vector<AggItem> aggs;
  aggs.push_back({AggFunc::kSum, lo.Col("lo_revenue"), "revenue"});
  lo.GroupBy({"d_year", "p_brand1"}, std::move(aggs));
  lo.OrderBy({{"d_year", true}, {"p_brand1", true}});
  return e.CreateQuery(lo.Build())->Execute();
}

// Q3.x: customer x supplier geography; group by (cust geo, supp geo,
// d_year), revenue-descending within year.
ResultSet FlightThree(Engine& e, const SsbData& db,
                      const std::vector<std::string>& cust_cols,
                      const PredFn& cust_pred, const std::string& cust_group,
                      const std::vector<std::string>& supp_cols,
                      const PredFn& supp_pred, const std::string& supp_group,
                      const std::vector<std::string>& date_cols,
                      const PredFn& date_pred) {
  PlanBuilder cust = PlanBuilder::Scan(db.customer.get(), cust_cols);
  cust.Filter(cust_pred(cust));
  PlanBuilder sup = PlanBuilder::Scan(db.supplier.get(), supp_cols);
  sup.Filter(supp_pred(sup));
  PlanBuilder d = PlanBuilder::Scan(db.date_dim.get(), date_cols);
  if (date_pred != nullptr) d.Filter(date_pred(d));

  PlanBuilder lo = PlanBuilder::Scan(db.lineorder.get(),
                           {"lo_orderdate", "lo_custkey", "lo_suppkey",
                            "lo_revenue"});
  lo.HashJoin(std::move(cust), {"lo_custkey"}, {"c_custkey"}, {cust_group},
              JoinKind::kInner);
  lo.HashJoin(std::move(sup), {"lo_suppkey"}, {"s_suppkey"}, {supp_group},
              JoinKind::kInner);
  // Date join via the adaptive path (see FlightTwo).
  lo.Join(std::move(d), {"lo_orderdate"}, {"d_datekey"}, {"d_year"},
          JoinKind::kInner, nullptr, JoinStrategy::kAdaptive);
  std::vector<AggItem> aggs;
  aggs.push_back({AggFunc::kSum, lo.Col("lo_revenue"), "revenue"});
  lo.GroupBy({cust_group, supp_group, "d_year"}, std::move(aggs));
  lo.OrderBy({{"d_year", true}, {"revenue", false}});
  return e.CreateQuery(lo.Build())->Execute();
}

}  // namespace

const char* SsbQueryName(int index) {
  static const char* kNames[13] = {"1.1", "1.2", "1.3", "2.1", "2.2",
                                   "2.3", "3.1", "3.2", "3.3", "3.4",
                                   "4.1", "4.2", "4.3"};
  MORSEL_CHECK(index >= 0 && index < 13);
  return kNames[index];
}

// Q4.x profit queries are written out in full below FlightThree-style
// parameterization would obscure them.
namespace {

ResultSet Q4_1(Engine& e, const SsbData& db) {
  PlanBuilder cust = PlanBuilder::Scan(db.customer.get(),
                             {"c_custkey", "c_region", "c_nation"});
  cust.Filter(Eq(cust.Col("c_region"), ConstStr("AMERICA")));
  PlanBuilder sup = PlanBuilder::Scan(db.supplier.get(), {"s_suppkey", "s_region"});
  sup.Filter(Eq(sup.Col("s_region"), ConstStr("AMERICA")));
  PlanBuilder part = PlanBuilder::Scan(db.part.get(), {"p_partkey", "p_mfgr"});
  part.Filter(InStr(part.Col("p_mfgr"), {"MFGR#1", "MFGR#2"}));
  PlanBuilder d = PlanBuilder::Scan(db.date_dim.get(), {"d_datekey", "d_year"});

  PlanBuilder lo = PlanBuilder::Scan(db.lineorder.get(),
                           {"lo_orderdate", "lo_custkey", "lo_suppkey",
                            "lo_partkey", "lo_revenue", "lo_supplycost"});
  lo.HashJoin(std::move(cust), {"lo_custkey"}, {"c_custkey"}, {"c_nation"},
              JoinKind::kInner);
  lo.HashJoin(std::move(sup), {"lo_suppkey"}, {"s_suppkey"}, {},
              JoinKind::kSemi);
  lo.HashJoin(std::move(part), {"lo_partkey"}, {"p_partkey"}, {},
              JoinKind::kSemi);
  lo.HashJoin(std::move(d), {"lo_orderdate"}, {"d_datekey"}, {"d_year"},
              JoinKind::kInner);
  std::vector<AggItem> aggs;
  aggs.push_back({AggFunc::kSum,
                  Sub(lo.Col("lo_revenue"), lo.Col("lo_supplycost")),
                  "profit"});
  lo.GroupBy({"d_year", "c_nation"}, std::move(aggs));
  lo.OrderBy({{"d_year", true}, {"c_nation", true}});
  return e.CreateQuery(lo.Build())->Execute();
}

ResultSet Q4_2(Engine& e, const SsbData& db) {
  PlanBuilder cust = PlanBuilder::Scan(db.customer.get(), {"c_custkey", "c_region"});
  cust.Filter(Eq(cust.Col("c_region"), ConstStr("AMERICA")));
  PlanBuilder sup = PlanBuilder::Scan(db.supplier.get(),
                            {"s_suppkey", "s_region", "s_nation"});
  sup.Filter(Eq(sup.Col("s_region"), ConstStr("AMERICA")));
  PlanBuilder part = PlanBuilder::Scan(db.part.get(),
                             {"p_partkey", "p_mfgr", "p_category"});
  part.Filter(InStr(part.Col("p_mfgr"), {"MFGR#1", "MFGR#2"}));
  PlanBuilder d = PlanBuilder::Scan(db.date_dim.get(), {"d_datekey", "d_year"});
  d.Filter(InI64(d.Col("d_year"), {1997, 1998}));

  PlanBuilder lo = PlanBuilder::Scan(db.lineorder.get(),
                           {"lo_orderdate", "lo_custkey", "lo_suppkey",
                            "lo_partkey", "lo_revenue", "lo_supplycost"});
  lo.HashJoin(std::move(cust), {"lo_custkey"}, {"c_custkey"}, {},
              JoinKind::kSemi);
  lo.HashJoin(std::move(sup), {"lo_suppkey"}, {"s_suppkey"}, {"s_nation"},
              JoinKind::kInner);
  lo.HashJoin(std::move(part), {"lo_partkey"}, {"p_partkey"},
              {"p_category"}, JoinKind::kInner);
  lo.HashJoin(std::move(d), {"lo_orderdate"}, {"d_datekey"}, {"d_year"},
              JoinKind::kInner);
  std::vector<AggItem> aggs;
  aggs.push_back({AggFunc::kSum,
                  Sub(lo.Col("lo_revenue"), lo.Col("lo_supplycost")),
                  "profit"});
  lo.GroupBy({"d_year", "s_nation", "p_category"}, std::move(aggs));
  lo.OrderBy({{"d_year", true}, {"s_nation", true}, {"p_category", true}});
  return e.CreateQuery(lo.Build())->Execute();
}

ResultSet Q4_3(Engine& e, const SsbData& db) {
  PlanBuilder cust = PlanBuilder::Scan(db.customer.get(), {"c_custkey", "c_region"});
  cust.Filter(Eq(cust.Col("c_region"), ConstStr("AMERICA")));
  PlanBuilder sup = PlanBuilder::Scan(db.supplier.get(),
                            {"s_suppkey", "s_nation", "s_city"});
  sup.Filter(Eq(sup.Col("s_nation"), ConstStr("UNITED STATES")));
  PlanBuilder part = PlanBuilder::Scan(db.part.get(),
                             {"p_partkey", "p_category", "p_brand1"});
  part.Filter(Eq(part.Col("p_category"), ConstStr("MFGR#14")));
  PlanBuilder d = PlanBuilder::Scan(db.date_dim.get(), {"d_datekey", "d_year"});
  d.Filter(InI64(d.Col("d_year"), {1997, 1998}));

  PlanBuilder lo = PlanBuilder::Scan(db.lineorder.get(),
                           {"lo_orderdate", "lo_custkey", "lo_suppkey",
                            "lo_partkey", "lo_revenue", "lo_supplycost"});
  lo.HashJoin(std::move(cust), {"lo_custkey"}, {"c_custkey"}, {},
              JoinKind::kSemi);
  lo.HashJoin(std::move(sup), {"lo_suppkey"}, {"s_suppkey"}, {"s_city"},
              JoinKind::kInner);
  lo.HashJoin(std::move(part), {"lo_partkey"}, {"p_partkey"}, {"p_brand1"},
              JoinKind::kInner);
  lo.HashJoin(std::move(d), {"lo_orderdate"}, {"d_datekey"}, {"d_year"},
              JoinKind::kInner);
  std::vector<AggItem> aggs;
  aggs.push_back({AggFunc::kSum,
                  Sub(lo.Col("lo_revenue"), lo.Col("lo_supplycost")),
                  "profit"});
  lo.GroupBy({"d_year", "s_city", "p_brand1"}, std::move(aggs));
  lo.OrderBy({{"d_year", true}, {"s_city", true}, {"p_brand1", true}});
  return e.CreateQuery(lo.Build())->Execute();
}

}  // namespace

ResultSet RunSsbQuery(Engine& engine, const SsbData& db, int index) {
  auto str_eq = [](const char* col, const char* value) {
    return [col, value](const PlanBuilder& b) {
      return Eq(b.Col(col), ConstStr(value));
    };
  };
  switch (index) {
    case 0:  // 1.1
      return FlightOne(
          engine, db,
          [](const PlanBuilder& d) {
            return Eq(d.Col("d_year"), ConstI64(1993));
          },
          1, 3, 1, 24);
    case 1:  // 1.2
      return FlightOne(
          engine, db,
          [](const PlanBuilder& d) {
            return Eq(d.Col("d_yearmonthnum"), ConstI64(199401));
          },
          4, 6, 26, 35);
    case 2:  // 1.3
      return FlightOne(
          engine, db,
          [](const PlanBuilder& d) {
            return And(Eq(d.Col("d_weeknuminyear"), ConstI64(6)),
                       Eq(d.Col("d_year"), ConstI64(1994)));
          },
          5, 7, 26, 35);
    case 3:  // 2.1
      return FlightTwo(engine, db, str_eq("p_category", "MFGR#12"),
                       "AMERICA");
    case 4:  // 2.2
      return FlightTwo(
          engine, db,
          [](const PlanBuilder& p) {
            return And(Ge(p.Col("p_brand1"), ConstStr("MFGR#2221")),
                       Le(p.Col("p_brand1"), ConstStr("MFGR#2228")));
          },
          "ASIA");
    case 5:  // 2.3
      return FlightTwo(engine, db, str_eq("p_brand1", "MFGR#2239"),
                       "EUROPE");
    case 6:  // 3.1
      return FlightThree(
          engine, db, {"c_custkey", "c_region", "c_nation"},
          str_eq("c_region", "ASIA"), "c_nation",
          {"s_suppkey", "s_region", "s_nation"}, str_eq("s_region", "ASIA"),
          "s_nation", {"d_datekey", "d_year"},
          [](const PlanBuilder& d) {
            return And(Ge(d.Col("d_year"), ConstI64(1992)),
                       Le(d.Col("d_year"), ConstI64(1997)));
          });
    case 7:  // 3.2
      return FlightThree(
          engine, db, {"c_custkey", "c_nation", "c_city"},
          str_eq("c_nation", "UNITED STATES"), "c_city",
          {"s_suppkey", "s_nation", "s_city"},
          str_eq("s_nation", "UNITED STATES"), "s_city",
          {"d_datekey", "d_year"},
          [](const PlanBuilder& d) {
            return And(Ge(d.Col("d_year"), ConstI64(1992)),
                       Le(d.Col("d_year"), ConstI64(1997)));
          });
    case 8:  // 3.3
      return FlightThree(
          engine, db, {"c_custkey", "c_city"},
          [](const PlanBuilder& c) {
            return InStr(c.Col("c_city"), {"UNITED KI1", "UNITED KI5"});
          },
          "c_city", {"s_suppkey", "s_city"},
          [](const PlanBuilder& s) {
            return InStr(s.Col("s_city"), {"UNITED KI1", "UNITED KI5"});
          },
          "s_city", {"d_datekey", "d_year"},
          [](const PlanBuilder& d) {
            return And(Ge(d.Col("d_year"), ConstI64(1992)),
                       Le(d.Col("d_year"), ConstI64(1997)));
          });
    case 9:  // 3.4
      return FlightThree(
          engine, db, {"c_custkey", "c_city"},
          [](const PlanBuilder& c) {
            return InStr(c.Col("c_city"), {"UNITED KI1", "UNITED KI5"});
          },
          "c_city", {"s_suppkey", "s_city"},
          [](const PlanBuilder& s) {
            return InStr(s.Col("s_city"), {"UNITED KI1", "UNITED KI5"});
          },
          "s_city", {"d_datekey", "d_year", "d_yearmonth"},
          [](const PlanBuilder& d) {
            return Eq(d.Col("d_yearmonth"), ConstStr("Dec1997"));
          });
    case 10:  // 4.1
      return Q4_1(engine, db);
    case 11:  // 4.2
      return Q4_2(engine, db);
    case 12:  // 4.3
      return Q4_3(engine, db);
    default:
      MORSEL_CHECK_MSG(false, "SSB query index out of range");
  }
  return ResultSet();
}

}  // namespace morsel
