#ifndef MORSELDB_SSB_SSB_H_
#define MORSELDB_SSB_SSB_H_

#include <memory>

#include "numa/topology.h"
#include "storage/table.h"

namespace morsel {

// In-memory Star Schema Benchmark database (O'Neil et al.): one large
// denormalized fact table (lineorder) and four small dimensions. The
// paper evaluates SSB in §5.5 (Table 3) because "all SSB queries join a
// large fact table with multiple smaller dimension tables where the
// pipelining capabilities of our hash join algorithm are very
// beneficial". lineorder is partitioned by orderkey hash; dimensions by
// their keys.
struct SsbData {
  double scale_factor = 0.0;
  std::unique_ptr<Table> lineorder;
  std::unique_ptr<Table> date_dim;
  std::unique_ptr<Table> customer;
  std::unique_ptr<Table> supplier;
  std::unique_ptr<Table> part;

  size_t TotalRows() const {
    return lineorder->NumRows() + date_dim->NumRows() +
           customer->NumRows() + supplier->NumRows() + part->NumRows();
  }
};

// Deterministic SSB generator; cardinalities follow the SSB paper
// (lineorder ~6M rows at sf=1, supplier 2k*sf, customer 30k*sf).
SsbData GenerateSsb(double sf, const Topology& topo,
                    Placement placement = Placement::kNumaLocal);

}  // namespace morsel

#endif  // MORSELDB_SSB_SSB_H_
