#ifndef MORSELDB_SSB_SSB_QUERIES_H_
#define MORSELDB_SSB_SSB_QUERIES_H_

#include <string>

#include "engine/query.h"
#include "ssb/ssb.h"

namespace morsel {

inline constexpr int kNumSsbQueries = 13;

// SSB query ids in flight order: 0 -> 1.1, 1 -> 1.2, ... 12 -> 4.3.
const char* SsbQueryName(int index);

// Runs SSB query `index` (0..12) and returns its result. All queries
// probe the fact table through stacked dimension hash tables — the join
// pattern §5.5 highlights.
ResultSet RunSsbQuery(Engine& engine, const SsbData& db, int index);

}  // namespace morsel

#endif  // MORSELDB_SSB_SSB_QUERIES_H_
