#include <algorithm>
#include <cstdio>
#include <string>

#include "common/date.h"
#include "common/hash.h"
#include "common/rng.h"
#include "ssb/ssb.h"

namespace morsel {

namespace {

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int region;
};
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},   {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},    {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},    {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2}, {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},     {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},   {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},     {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},   {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kMonths[12] = {"Jan", "Feb", "Mar", "Apr",
                                     "May", "Jun", "Jul", "Aug",
                                     "Sep", "Oct", "Nov", "Dec"};

constexpr const char* kMktSegments[5] = {"AUTOMOBILE", "BUILDING",
                                         "FURNITURE", "MACHINERY",
                                         "HOUSEHOLD"};

constexpr const char* kColors[20] = {
    "almond", "antique", "aquamarine", "azure",  "beige",
    "bisque", "black",   "blanched",   "blue",   "blush",
    "brown",  "coral",   "cream",      "cyan",   "forest",
    "ghost",  "green",   "grey",       "ivory",  "khaki"};

// SSB city: first 9 chars of the nation name padded, plus a digit 0-9.
std::string MakeCity(const char* nation, int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%-9.9s%d", nation, i);
  return std::string(buf);
}

int64_t DateKey(Date32 d) {
  int y, m, day;
  DateToCivil(d, &y, &m, &day);
  return static_cast<int64_t>(y) * 10000 + m * 100 + day;
}

}  // namespace

SsbData GenerateSsb(double sf, const Topology& topo, Placement placement) {
  SsbData db;
  db.scale_factor = sf;

  const int64_t num_customers =
      std::max<int64_t>(60, static_cast<int64_t>(30000 * sf));
  const int64_t num_suppliers =
      std::max<int64_t>(20, static_cast<int64_t>(2000 * sf));
  const int64_t num_parts =
      std::max<int64_t>(200, static_cast<int64_t>(200000 * sf));
  const int64_t num_orders =
      std::max<int64_t>(1500, static_cast<int64_t>(1500000 * sf));

  // --- date dimension (1992-01-01 .. 1998-12-31) -----------------------------
  db.date_dim = std::make_unique<Table>(
      "date",
      Schema({{"d_datekey", LogicalType::kInt64},
              {"d_year", LogicalType::kInt64},
              {"d_yearmonthnum", LogicalType::kInt64},
              {"d_yearmonth", LogicalType::kString},
              {"d_weeknuminyear", LogicalType::kInt64},
              {"d_month", LogicalType::kString}}),
      topo, placement);
  {
    Date32 d0 = MakeDate(1992, 1, 1);
    Date32 d1 = MakeDate(1998, 12, 31);
    for (Date32 d = d0; d <= d1; ++d) {
      int y, m, day;
      DateToCivil(d, &y, &m, &day);
      int64_t key = DateKey(d);
      int p = db.date_dim->PartitionOfKey(Hash64(static_cast<uint64_t>(key)));
      char ym[16];
      std::snprintf(ym, sizeof(ym), "%s%d", kMonths[m - 1], y);
      int week = (d - MakeDate(y, 1, 1)) / 7 + 1;
      db.date_dim->Int64Col(p, 0)->Append(key);
      db.date_dim->Int64Col(p, 1)->Append(y);
      db.date_dim->Int64Col(p, 2)->Append(static_cast<int64_t>(y) * 100 + m);
      db.date_dim->StrCol(p, 3)->Append(ym);
      db.date_dim->Int64Col(p, 4)->Append(week);
      db.date_dim->StrCol(p, 5)->Append(kMonths[m - 1]);
    }
    for (int p = 0; p < db.date_dim->num_partitions(); ++p) {
      db.date_dim->SealPartition(p);
    }
  }

  // --- customer ---------------------------------------------------------------
  db.customer = std::make_unique<Table>(
      "customer",
      Schema({{"c_custkey", LogicalType::kInt64},
              {"c_name", LogicalType::kString},
              {"c_city", LogicalType::kString},
              {"c_nation", LogicalType::kString},
              {"c_region", LogicalType::kString},
              {"c_mktsegment", LogicalType::kString}}),
      topo, placement);
  {
    Rng rng(11);
    char buf[32];
    for (int64_t c = 1; c <= num_customers; ++c) {
      int p = db.customer->PartitionOfKey(Hash64(static_cast<uint64_t>(c)));
      const NationSpec& n = kNations[rng.Uniform(0, 24)];
      std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                    static_cast<long long>(c));
      db.customer->Int64Col(p, 0)->Append(c);
      db.customer->StrCol(p, 1)->Append(buf);
      db.customer->StrCol(p, 2)->Append(
          MakeCity(n.name, static_cast<int>(rng.Uniform(0, 9))));
      db.customer->StrCol(p, 3)->Append(n.name);
      db.customer->StrCol(p, 4)->Append(kRegions[n.region]);
      db.customer->StrCol(p, 5)->Append(kMktSegments[rng.Uniform(0, 4)]);
    }
    for (int p = 0; p < db.customer->num_partitions(); ++p) {
      db.customer->SealPartition(p);
    }
  }

  // --- supplier ---------------------------------------------------------------
  db.supplier = std::make_unique<Table>(
      "supplier",
      Schema({{"s_suppkey", LogicalType::kInt64},
              {"s_name", LogicalType::kString},
              {"s_city", LogicalType::kString},
              {"s_nation", LogicalType::kString},
              {"s_region", LogicalType::kString}}),
      topo, placement);
  {
    Rng rng(12);
    char buf[32];
    for (int64_t s = 1; s <= num_suppliers; ++s) {
      int p = db.supplier->PartitionOfKey(Hash64(static_cast<uint64_t>(s)));
      const NationSpec& n = kNations[rng.Uniform(0, 24)];
      std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                    static_cast<long long>(s));
      db.supplier->Int64Col(p, 0)->Append(s);
      db.supplier->StrCol(p, 1)->Append(buf);
      db.supplier->StrCol(p, 2)->Append(
          MakeCity(n.name, static_cast<int>(rng.Uniform(0, 9))));
      db.supplier->StrCol(p, 3)->Append(n.name);
      db.supplier->StrCol(p, 4)->Append(kRegions[n.region]);
    }
    for (int p = 0; p < db.supplier->num_partitions(); ++p) {
      db.supplier->SealPartition(p);
    }
  }

  // --- part -------------------------------------------------------------------
  db.part = std::make_unique<Table>(
      "part",
      Schema({{"p_partkey", LogicalType::kInt64},
              {"p_name", LogicalType::kString},
              {"p_mfgr", LogicalType::kString},
              {"p_category", LogicalType::kString},
              {"p_brand1", LogicalType::kString},
              {"p_color", LogicalType::kString},
              {"p_size", LogicalType::kInt64}}),
      topo, placement);
  {
    Rng rng(13);
    char buf[32];
    for (int64_t pk = 1; pk <= num_parts; ++pk) {
      int p = db.part->PartitionOfKey(Hash64(static_cast<uint64_t>(pk)));
      int mfgr = static_cast<int>(rng.Uniform(1, 5));
      int cat = static_cast<int>(rng.Uniform(1, 5));
      int brand = static_cast<int>(rng.Uniform(1, 40));
      db.part->Int64Col(p, 0)->Append(pk);
      std::string name = kColors[rng.Uniform(0, 19)];
      name += ' ';
      name += kColors[rng.Uniform(0, 19)];
      db.part->StrCol(p, 1)->Append(name);
      std::snprintf(buf, sizeof(buf), "MFGR#%d", mfgr);
      db.part->StrCol(p, 2)->Append(buf);
      std::snprintf(buf, sizeof(buf), "MFGR#%d%d", mfgr, cat);
      db.part->StrCol(p, 3)->Append(buf);
      std::snprintf(buf, sizeof(buf), "MFGR#%d%d%02d", mfgr, cat, brand);
      db.part->StrCol(p, 4)->Append(buf);
      db.part->StrCol(p, 5)->Append(kColors[rng.Uniform(0, 19)]);
      db.part->Int64Col(p, 6)->Append(rng.Uniform(1, 50));
    }
    for (int p = 0; p < db.part->num_partitions(); ++p) {
      db.part->SealPartition(p);
    }
  }

  // --- lineorder ---------------------------------------------------------------
  db.lineorder = std::make_unique<Table>(
      "lineorder",
      Schema({{"lo_orderkey", LogicalType::kInt64},
              {"lo_linenumber", LogicalType::kInt64},
              {"lo_custkey", LogicalType::kInt64},
              {"lo_partkey", LogicalType::kInt64},
              {"lo_suppkey", LogicalType::kInt64},
              {"lo_orderdate", LogicalType::kInt64},
              {"lo_quantity", LogicalType::kInt64},
              {"lo_extendedprice", LogicalType::kDouble},
              {"lo_discount", LogicalType::kInt64},
              {"lo_revenue", LogicalType::kDouble},
              {"lo_supplycost", LogicalType::kDouble}}),
      topo, placement);
  {
    Rng rng(14);
    const Date32 d0 = MakeDate(1992, 1, 1);
    const Date32 d1 = MakeDate(1998, 8, 2);
    for (int64_t ok = 1; ok <= num_orders; ++ok) {
      int p = db.lineorder->PartitionOfKey(Hash64(static_cast<uint64_t>(ok)));
      int64_t ck = rng.Uniform(1, num_customers);
      Date32 odate = static_cast<Date32>(rng.Uniform(d0, d1));
      int64_t datekey = DateKey(odate);
      int lines = static_cast<int>(rng.Uniform(1, 7));
      for (int ln = 1; ln <= lines; ++ln) {
        int64_t pk = rng.Uniform(1, num_parts);
        int64_t sk = rng.Uniform(1, num_suppliers);
        int64_t qty = rng.Uniform(1, 50);
        int64_t discount = rng.Uniform(0, 10);
        double price =
            static_cast<double>(qty) *
            (90000.0 + 100.0 * static_cast<double>(pk % 1000)) / 100.0;
        double revenue =
            price * static_cast<double>(100 - discount) / 100.0;
        db.lineorder->Int64Col(p, 0)->Append(ok);
        db.lineorder->Int64Col(p, 1)->Append(ln);
        db.lineorder->Int64Col(p, 2)->Append(ck);
        db.lineorder->Int64Col(p, 3)->Append(pk);
        db.lineorder->Int64Col(p, 4)->Append(sk);
        db.lineorder->Int64Col(p, 5)->Append(datekey);
        db.lineorder->Int64Col(p, 6)->Append(qty);
        db.lineorder->DoubleCol(p, 7)->Append(price);
        db.lineorder->Int64Col(p, 8)->Append(discount);
        db.lineorder->DoubleCol(p, 9)->Append(revenue);
        db.lineorder->DoubleCol(p, 10)->Append(price * 0.6);
      }
    }
    for (int p = 0; p < db.lineorder->num_partitions(); ++p) {
      db.lineorder->SealPartition(p);
    }
  }

  return db;
}

}  // namespace morsel
